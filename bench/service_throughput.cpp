// Benchmark of the multi-tenant block service: 100k+ short sequential
// streams spread over 64+ volumes and 64 tenants, driven through the
// VolumeManager's SQ/CQ front end. Results print as a table and land
// in BENCH_service.json.
//
// The headline comparison is queue-depth-aware batching: the same
// stream load replayed deterministically (manual pump, so batch
// composition is exact) at max_batch = 1 versus deep batches. Batch
// size 1 pays the classic small-write penalty per block — every write
// reads its old data and both parities and writes all three back.
// Deep batches hand the volume executor planner-sized slices: adjacent
// stream extents fuse into ranged full-stripe writes (zero pre-reads)
// and scattered singles share one batched write_range per volume (at
// most one parity RMW per stripe per batch). The device-model figures
// price the counted DiskArray I/O through sim::DiskParams, so the gate
// is deterministic.
//
// Three exit-code gates, run by CI as --smoke:
//   1. batching: deep-batch device throughput >= 2x max_batch=1.
//   2. fan-out latency: aggregate p99 across 64 volumes (threaded, 4
//      shards, admission-bounded) <= 3x the single-volume single-shard
//      baseline p99 (noise-tolerant: retried up to 3 times).
//   3. disabled overhead: with the full observability layer attached
//      (metrics collectors, volume collectors, SLO tracker) but every
//      switch off, in-memory throughput >= 0.98x a bare manager —
//      the request-tracing layer must cost one branch per hop when
//      disarmed (noise-tolerant: best-of-3 pairs, remeasured).
//
// Every run also leaves request-tracing artifacts next to the JSON:
// service_trace.json (Chrome trace span trees of a small armed load)
// and service_slow.json (its slowest-N exemplars), which CI uploads
// when a gate fails.

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/reqtrace.hpp"
#include "obs/trace.hpp"
#include "service/loadgen.hpp"
#include "service/slo.hpp"
#include "service/volume_manager.hpp"
#include "util/table.hpp"

namespace {

using namespace c56;

struct ModeRow {
  std::string name;
  svc::LoadStats stats;
};

svc::LoadStats run_mode(const svc::LoadParams& lp, const svc::ServiceConfig& sc,
                        std::string* metrics_json = nullptr) {
  // The registry must outlive the manager: volume-level collectors
  // registered by attach_volume_metrics detach from their subsystems'
  // destructors.
  obs::Registry reg;
  svc::VolumeManager mgr(sc);
  svc::create_stream_volumes(mgr, lp);
  if (metrics_json) {
    mgr.attach_metrics(reg);
    mgr.attach_volume_metrics(reg);
  }
  svc::LoadStats st = svc::run_stream_load(mgr, lp);
  if (metrics_json) {
    *metrics_json = reg.to_json();
    mgr.detach_metrics();
  }
  mgr.stop();
  return st;
}

/// One run with the whole service-plane observability stack wired in —
/// registry collectors, per-volume collectors, SLO tracker — the
/// "attached" arm of the disabled-overhead gate and the armed artifact
/// run. Whether any of it *observes* is up to the global switches.
svc::LoadStats run_mode_attached(const svc::LoadParams& lp,
                                 const svc::ServiceConfig& sc) {
  obs::Registry reg;
  svc::VolumeManager mgr(sc);
  svc::create_stream_volumes(mgr, lp);
  mgr.attach_metrics(reg);
  mgr.attach_volume_metrics(reg);
  svc::SloTracker slo(mgr);
  slo.attach_metrics(reg);
  svc::LoadStats st = svc::run_stream_load(mgr, lp);
  slo.update();
  slo.detach_metrics();
  mgr.detach_metrics();
  mgr.stop();
  return st;
}

void json_mode(std::ostringstream& json, const std::string& name,
               const svc::ServiceConfig& sc, const svc::LoadStats& s,
               bool last) {
  json << "    {\"mode\": \"" << name << "\", \"shards\": " << sc.shards
       << ", \"max_batch\": " << sc.max_batch
       << ", \"streams\": " << s.streams << ", \"requests\": " << s.requests
       << ", \"rejected\": " << s.rejected << ", \"errors\": " << s.errors
       << ", \"mbps\": " << s.mbps << ", \"device_mbps\": " << s.device_mbps
       << ", \"device_runs\": " << s.device_runs
       << ", \"device_bytes\": " << s.device_bytes
       << ", \"p50_us\": " << s.p50_us << ", \"p99_us\": " << s.p99_us
       << ", \"max_us\": " << s.max_us << "}" << (last ? "" : ",") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  obs::set_metrics_enabled(true);

  svc::LoadParams lp;
  lp.volumes = 64;
  lp.tenants = 64;
  lp.streams = 100000;  // rounded up to 100032 (64 x 1563)
  lp.requests_per_stream = 2;
  lp.block_bytes = 512;
  lp.p = 7;
  lp.seed = 0xC56'0801;

  std::printf(
      "Block service: %lld streams x %d requests over %d volumes, "
      "%d tenants, %zu B blocks, p=%d (Code 5-6)%s\n\n",
      static_cast<long long>(lp.streams), lp.requests_per_stream, lp.volumes,
      lp.tenants, lp.block_bytes, lp.p, smoke ? " [smoke]" : "");

  // --- Deterministic batching sweep (manual pump) -----------------
  svc::ServiceConfig base;
  base.shards = 8;
  base.manual_pump = true;
  base.shard_queue_cap = 1 << 18;  // hold the whole load; depth = batching
  base.tenant_inflight = 1 << 19;

  std::vector<ModeRow> rows;
  std::vector<svc::ServiceConfig> cfgs;
  auto add_mode = [&](const std::string& name, int max_batch,
                      std::string* metrics = nullptr) {
    svc::ServiceConfig sc = base;
    sc.max_batch = max_batch;
    rows.push_back({name, run_mode(lp, sc, metrics)});
    cfgs.push_back(sc);
  };

  std::string metrics_json;
  add_mode("batch=1", 1);
  add_mode("batch=256", 256);
  if (!smoke) add_mode("batch=4096", 4096);
  add_mode("saturated", 1 << 16, &metrics_json);

  TextTable t({"mode", "shards", "batch", "requests", "MB/s", "dev MB/s",
               "runs", "p99 us"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    t.add_row({rows[i].name, std::to_string(cfgs[i].shards),
               std::to_string(cfgs[i].max_batch),
               std::to_string(rows[i].stats.requests),
               TextTable::fmt(rows[i].stats.mbps, 1),
               TextTable::fmt(rows[i].stats.device_mbps, 3),
               std::to_string(rows[i].stats.device_runs),
               TextTable::fmt(rows[i].stats.p99_us, 0)});
  }

  const svc::LoadStats& batch1 = rows.front().stats;
  const svc::LoadStats& deep = rows.back().stats;

  // --- Threaded fan-out latency (admission-bounded queues) --------
  svc::ServiceConfig multi_cfg;
  multi_cfg.shards = 4;
  multi_cfg.tenant_inflight = 64;  // bounds queueing so p99 is meaningful
  svc::LoadParams single_lp = lp;
  single_lp.volumes = 1;
  // Same sustained per-shard submission load as the multi run (its
  // 200k requests split over 4 shards), so both runs measure the
  // steady-state tail under the same admission cap rather than one
  // short burst against one long one.
  single_lp.streams =
      lp.streams * lp.requests_per_stream / multi_cfg.shards /
      single_lp.requests_per_stream;
  svc::ServiceConfig single_cfg = multi_cfg;
  single_cfg.shards = 1;

  svc::LoadStats multi = run_mode(lp, multi_cfg);
  svc::LoadStats single = run_mode(single_lp, single_cfg);
  double p99_ratio = multi.p99_us / std::max(single.p99_us, 1.0);
  for (int attempt = 1; attempt < 3 && p99_ratio > 3.0; ++attempt) {
    std::printf("p99 ratio %.2f above gate; remeasuring (%d/2)\n", p99_ratio,
                attempt);
    multi = run_mode(lp, multi_cfg);
    single = run_mode(single_lp, single_cfg);
    p99_ratio = std::min(p99_ratio,
                         multi.p99_us / std::max(single.p99_us, 1.0));
  }

  t.add_row({"64-vol threaded", std::to_string(multi_cfg.shards),
             std::to_string(multi_cfg.max_batch),
             std::to_string(multi.requests), TextTable::fmt(multi.mbps, 1),
             TextTable::fmt(multi.device_mbps, 3),
             std::to_string(multi.device_runs),
             TextTable::fmt(multi.p99_us, 0)});
  t.add_row({"1-vol baseline", "1", std::to_string(single_cfg.max_batch),
             std::to_string(single.requests), TextTable::fmt(single.mbps, 1),
             TextTable::fmt(single.device_mbps, 3),
             std::to_string(single.device_runs),
             TextTable::fmt(single.p99_us, 0)});

  // --- Attached-but-disabled overhead (gate 3) --------------------
  // Every switch off: the load must run at bare-manager speed even
  // with the full tracing/metrics/SLO layer attached. The manual-pump
  // load is single-threaded, so the arms are rated by payload over
  // process CPU time — wall clock on a shared runner carries
  // preemption noise far above the 2% budget. Pairs alternate so
  // drift hits both arms; best-of per arm rejects residual noise.
  obs::set_metrics_enabled(false);
  svc::ServiceConfig overhead_cfg = base;
  overhead_cfg.max_batch = 256;
  svc::LoadParams overhead_lp = lp;
  overhead_lp.streams = smoke ? lp.streams / 2 : lp.streams;
  auto cpu_mbps = [&](bool attached) {
    const std::clock_t c0 = std::clock();
    svc::LoadStats st = attached ? run_mode_attached(overhead_lp, overhead_cfg)
                                 : run_mode(overhead_lp, overhead_cfg);
    const double cpu_s =
        static_cast<double>(std::clock() - c0) / CLOCKS_PER_SEC;
    return cpu_s > 0 ? static_cast<double>(st.payload_bytes) / cpu_s / 1e6
                     : st.mbps;
  };
  double plain_best = 0, attached_best = 0, overhead_ratio = 0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (attempt > 0) {
      std::printf("overhead ratio %.4f below gate; remeasuring (%d/2)\n",
                  overhead_ratio, attempt);
    }
    for (int round = 0; round < 3; ++round) {
      plain_best = std::max(plain_best, cpu_mbps(false));
      attached_best = std::max(attached_best, cpu_mbps(true));
    }
    overhead_ratio = plain_best > 0 ? attached_best / plain_best : 0;
    if (overhead_ratio >= 0.98) break;
  }
  const bool overhead_pass = overhead_ratio >= 0.98;
  obs::set_metrics_enabled(true);

  // --- Armed artifact run -----------------------------------------
  // A small fully-armed load so every bench run leaves a Chrome trace
  // of request span trees and the slowest-N exemplar bundle on disk
  // for CI to upload when a gate fails.
  obs::set_trace_enabled(true);
  obs::set_req_trace_enabled(true);
  obs::TraceRecorder::global().clear();
  obs::SlowRequestRing::global().clear();
  {
    svc::LoadParams trace_lp = lp;
    trace_lp.volumes = 8;
    trace_lp.tenants = 8;
    trace_lp.streams = 2000;
    svc::ServiceConfig trace_cfg;
    trace_cfg.shards = 4;
    run_mode_attached(trace_lp, trace_cfg);
  }
  obs::set_req_trace_enabled(false);
  obs::set_trace_enabled(false);
  if (FILE* f = std::fopen("service_trace.json", "w")) {
    std::fputs(obs::TraceRecorder::global().to_json().c_str(), f);
    std::fclose(f);
  }
  if (FILE* f = std::fopen("service_slow.json", "w")) {
    std::fputs("{\"slow_requests\": ", f);
    std::fputs(obs::SlowRequestRing::global().to_json().c_str(), f);
    std::fputs("}\n", f);
    std::fclose(f);
  }

  std::ostringstream table_out;
  t.print(table_out);
  std::fputs(table_out.str().c_str(), stdout);

  // Gate 1 (deterministic): deep batches must at least halve the
  // device-model cost of the batch-size-1 replay.
  const double batch_speedup =
      batch1.device_mbps > 0 ? deep.device_mbps / batch1.device_mbps : 0;
  const bool batch_pass = batch_speedup >= 2.0 && deep.errors == 0 &&
                          batch1.errors == 0;

  // Gate 2 (noise-tolerant): hosting 64 volumes must not blow up tail
  // latency versus serving one volume alone.
  const bool p99_pass = p99_ratio <= 3.0 && multi.errors == 0;

  std::ostringstream json;
  json << "{\n  \"smoke\": " << (smoke ? "true" : "false")
       << ",\n  \"streams\": " << deep.streams
       << ",\n  \"requests_per_stream\": " << lp.requests_per_stream
       << ",\n  \"volumes\": " << lp.volumes
       << ",\n  \"tenants\": " << lp.tenants
       << ",\n  \"block_bytes\": " << lp.block_bytes << ",\n  \"p\": " << lp.p
       << ",\n  \"modes\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    json_mode(json, rows[i].name, cfgs[i], rows[i].stats, false);
  }
  json_mode(json, "64-vol threaded", multi_cfg, multi, false);
  json_mode(json, "1-vol baseline", single_cfg, single, true);
  json << "  ],\n  \"gates\": {\n"
       << "    \"batch_speedup\": {\"batch1_device_mbps\": "
       << batch1.device_mbps << ", \"deep_device_mbps\": " << deep.device_mbps
       << ", \"device_speedup\": " << batch_speedup
       << ", \"criteria\": \"deep batches >= 2x max_batch=1 on the device "
          "model\", \"pass\": "
       << (batch_pass ? "true" : "false") << "},\n"
       << "    \"p99_fanout\": {\"multi_p99_us\": " << multi.p99_us
       << ", \"single_p99_us\": " << single.p99_us
       << ", \"ratio\": " << p99_ratio
       << ", \"criteria\": \"64-volume aggregate p99 <= 3x single-volume "
          "baseline\", \"pass\": "
       << (p99_pass ? "true" : "false") << "},\n"
       << "    \"disabled_overhead\": {\"plain_cpu_mbps\": " << plain_best
       << ", \"attached_cpu_mbps\": " << attached_best
       << ", \"ratio\": " << overhead_ratio
       << ", \"criteria\": \"attached-but-disabled observability >= 0.98x "
          "bare manager (CPU-time rated)\", \"pass\": "
       << (overhead_pass ? "true" : "false") << "}\n  },\n"
       << "  \"metrics\": " << metrics_json << "\n}\n";

  std::printf(
      "\nbatching: device model %.3f -> %.3f MB/s (%.2fx, need >= 2.0) -> "
      "%s\n",
      batch1.device_mbps, deep.device_mbps, batch_speedup,
      batch_pass ? "PASS" : "FAIL");
  std::printf(
      "fan-out p99: %.0f us over %.0f us baseline (%.2fx, need <= 3.0) -> "
      "%s\n",
      multi.p99_us, single.p99_us, p99_ratio, p99_pass ? "PASS" : "FAIL");
  std::printf(
      "disabled overhead: attached %.1f / plain %.1f MB/s CPU (%.4fx, need "
      ">= 0.98) -> %s\n",
      attached_best, plain_best, overhead_ratio,
      overhead_pass ? "PASS" : "FAIL");

  if (FILE* f = std::fopen("BENCH_service.json", "w")) {
    std::fputs(json.str().c_str(), f);
    std::fclose(f);
    std::printf("wrote BENCH_service.json (+ service_trace.json, "
                "service_slow.json)\n");
  }
  return batch_pass && p99_pass && overhead_pass ? 0 : 1;
}
