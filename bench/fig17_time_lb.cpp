// Figure 17: conversion time with load balancing support
// (B*Te == 100%). The dedicated parity columns rotate across all
// spindles every stripe group, so each phase's time is total I/O / n.

#include <iostream>

#include "analysis/report.hpp"

int main() {
  const auto metric = [](const c56::mig::ConversionCosts& c) {
    return c.time;
  };
  std::cout << "Figure 17 -- conversion time, load balanced "
               "(relative to B*Te == 100%)\n\n";
  c56::ana::conversion_table(c56::ana::figure_conversion_set(true),
                             "conversion time", metric, /*as_percent=*/true)
      .print(std::cout);

  std::cout << "\nTrend with increasing disks (Code 5-6 direct, LB):\n\n";
  c56::ana::conversion_table(
      c56::ana::family_sweep(c56::CodeId::kCode56,
                             c56::mig::Approach::kDirect, true),
      "conversion time", metric, /*as_percent=*/true)
      .print(std::cout);
  return 0;
}
