// Figure 15: total I/Os in the conversion process (B == 100%).
// Code 5-6: B reads + B/(p-2) writes = 4B/3 at p=5 (the worked example
// of Section V-A); up to 48.5% fewer total I/Os than other codes.

#include <iostream>

#include "analysis/report.hpp"

int main() {
  const auto metric = [](const c56::mig::ConversionCosts& c) {
    return c.total_io;
  };
  std::cout << "Figure 15 -- total I/Os (relative to B == 100%)\n\n";
  c56::ana::conversion_table(c56::ana::figure_conversion_set(false),
                             "total I/Os", metric, /*as_percent=*/true)
      .print(std::cout);

  std::cout << "\nTrend with increasing disks (Code 5-6 direct):\n\n";
  c56::ana::conversion_table(
      c56::ana::family_sweep(c56::CodeId::kCode56,
                             c56::mig::Approach::kDirect, false),
      "total I/Os", metric, /*as_percent=*/true)
      .print(std::cout);
  return 0;
}
