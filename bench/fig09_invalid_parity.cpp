// Figure 9: invalid parity ratio under different conversion approaches
// using various RAID-6 codes. Direct conversion with Code 5-6 (and the
// RAID-5->RAID-4->RAID-6 route) invalidates nothing; the via-RAID-0
// route and the vertical codes NULL every old parity (1/(m-1) of B).

#include <iostream>

#include "analysis/report.hpp"

int main() {
  std::cout << "Figure 9 -- invalid parity ratio (relative to B)\n\n";
  c56::ana::conversion_table(
      c56::ana::figure_conversion_set(false), "invalid parity ratio",
      [](const c56::mig::ConversionCosts& c) {
        return c.invalid_parity_ratio;
      },
      /*as_percent=*/true)
      .print(std::cout);
  return 0;
}
