// Application latency during an online conversion, on the simulator.
//
// A fixed Poisson read/write workload runs against the array (a) idle,
// and (b) while each conversion's I/O stream executes. The latency
// inflation shows how gracefully each route coexists with foreground
// traffic: Code 5-6's stream reads every original disk sequentially and
// writes only the new disk, so foreground requests mostly queue behind
// one streaming pass; the invalidation/migration routes inject scattered
// I/O on every data disk.
//
//   $ ./online_sim_latency [B] [iops]

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "migration/trace_gen.hpp"
#include "sim/event_sim.hpp"
#include "sim/workload.hpp"
#include "util/table.hpp"

namespace {

constexpr int kAppTag = 1;

c56::sim::LatencyStats app_latency(const c56::mig::ConversionSpec* spec,
                                   std::int64_t blocks, double iops) {
  using namespace c56;
  // Conversion stream (may be null for the idle baseline).
  sim::Trace trace;
  int disks = 5;
  if (spec != nullptr) {
    const mig::ConversionPlanner planner(*spec);
    mig::TraceParams params;
    params.total_data_blocks = blocks;
    trace = make_conversion_trace(planner, params);
    disks = spec->n();
  } else {
    trace.phases.push_back({"idle", {}, {}});
  }
  // Estimate the window, then weave the workload through every phase.
  sim::ArraySimulator probe(disks);
  const double window =
      std::max(1000.0, probe.run(trace).makespan_ms);
  sim::WorkloadParams wl;
  wl.disks = disks;
  wl.blocks_per_disk = 1 << 20;
  wl.iops = iops;
  wl.horizon_ms = window / static_cast<double>(trace.phases.size());
  wl.tag = kAppTag;
  for (std::size_t k = 0; k < trace.phases.size(); ++k) {
    wl.seed = 100 + k;
    for (const auto& r : make_workload(wl)) {
      trace.phases[k].requests.push_back(r);
    }
  }
  sim::ArraySimulator sim(disks);
  return sim.run(trace).latency_by_tag.at(kAppTag);
}

}  // namespace

int main(int argc, char** argv) {
  using c56::mig::Approach;
  using c56::mig::ConversionSpec;
  const std::int64_t blocks = argc > 1 ? std::atoll(argv[1]) : 30'000;
  const double iops = argc > 2 ? std::atof(argv[2]) : 150.0;

  std::printf(
      "Foreground latency during conversion (B=%lld, %.0f IOPS app "
      "workload, LB)\n\n",
      static_cast<long long>(blocks), iops);
  const auto idle = app_latency(nullptr, blocks, iops);
  std::printf("idle array baseline: mean %.2f ms, max %.1f ms (%zu ops)\n\n",
              idle.mean_ms(), idle.max_ms, idle.count);

  c56::TextTable t({"conversion running", "app mean (ms)", "app max (ms)",
                    "inflation"});
  std::vector<ConversionSpec> specs{
      ConversionSpec::direct_code56(4, true),
      ConversionSpec::canonical(c56::CodeId::kRdp, Approach::kViaRaid4, 5,
                                true),
      ConversionSpec::canonical(c56::CodeId::kEvenOdd, Approach::kViaRaid0, 5,
                                true),
      ConversionSpec::canonical(c56::CodeId::kXCode, Approach::kDirect, 5,
                                true),
  };
  for (const auto& spec : specs) {
    const auto lat = app_latency(&spec, blocks, iops);
    t.add_row({spec.label(), c56::TextTable::fmt(lat.mean_ms(), 2),
               c56::TextTable::fmt(lat.max_ms, 1),
               c56::TextTable::fmt(lat.mean_ms() / idle.mean_ms(), 2) + "x"});
  }
  std::ostringstream os;
  t.print(os);
  std::fputs(os.str().c_str(), stdout);
  return 0;
}
