// Figure 10: old parity migration ratio. Only the RAID-5->RAID-4 route
// physically moves old parities (1/(m-1) of B); HDP's direct conversion
// modifies them in place (counted here as the paper's "migration &
// modification" ratio); Code 5-6 moves nothing -- the headline "up to
// 100% decrease" of Section V-B.

#include <iostream>

#include "analysis/report.hpp"

int main() {
  std::cout << "Figure 10 -- old parity migration/modification ratio "
               "(relative to B)\n\n";
  c56::ana::conversion_table(
      c56::ana::figure_conversion_set(false), "old parity migration ratio",
      [](const c56::mig::ConversionCosts& c) {
        return c.parity_migration_ratio;
      },
      /*as_percent=*/true)
      .print(std::cout);
  return 0;
}
