// Microbenchmarks for Section III-E(2): encoding and decoding
// throughput of every code in the zoo, plus the ablation called out in
// DESIGN.md — Code 5-6's specialized Algorithm 1 decoder vs the generic
// GF(2) solver on identical failures.

#include <benchmark/benchmark.h>

#include "codes/code56.hpp"
#include "codes/registry.hpp"
#include "util/rng.hpp"
#include "xorblk/buffer.hpp"

namespace {

constexpr std::size_t kBlockSize = 4096;

c56::Buffer encoded_stripe(const c56::ErasureCode& code, std::uint64_t seed) {
  c56::Buffer buf(static_cast<std::size_t>(code.cell_count()) * kBlockSize);
  c56::StripeView v =
      c56::StripeView::over(buf, code.rows(), code.cols(), kBlockSize);
  c56::Rng rng(seed);
  for (int r = 0; r < code.rows(); ++r) {
    for (int c = 0; c < code.cols(); ++c) {
      if (code.kind({r, c}) == c56::CellKind::kData) {
        auto blk = v.block({r, c});
        rng.fill(blk.data(), blk.size());
      }
    }
  }
  code.encode(v);
  return buf;
}

void BM_Encode(benchmark::State& state, c56::CodeId id) {
  const int p = static_cast<int>(state.range(0));
  auto code = c56::make_code(id, p);
  c56::Buffer buf = encoded_stripe(*code, 1);
  c56::StripeView v =
      c56::StripeView::over(buf, code->rows(), code->cols(), kBlockSize);
  for (auto _ : state) {
    code->encode(v);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          code->data_cell_count() * kBlockSize);
  state.SetLabel(code->name());
}

void BM_DecodeTwoColumns(benchmark::State& state, c56::CodeId id,
                         bool generic) {
  const int p = static_cast<int>(state.range(0));
  auto code = c56::make_code(id, p);
  const c56::Buffer original = encoded_stripe(*code, 2);
  const std::vector<int> failed{0, 2};
  for (auto _ : state) {
    c56::Buffer work = original;
    c56::StripeView v =
        c56::StripeView::over(work, code->rows(), code->cols(), kBlockSize);
    auto stats = generic ? code->decode_columns_generic(v, failed)
                         : code->decode_columns(v, failed);
    if (!stats) state.SkipWithError("decode failed");
    benchmark::DoNotOptimize(work.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          code->rows() * kBlockSize);
  state.SetLabel(code->name() + (generic ? " [generic]" : " [specialized]"));
}

void BM_HybridSingleRecovery(benchmark::State& state, bool hybrid) {
  const int p = static_cast<int>(state.range(0));
  c56::Code56 code(p);
  const c56::Buffer original = encoded_stripe(code, 3);
  for (auto _ : state) {
    c56::Buffer work = original;
    c56::StripeView v =
        c56::StripeView::over(work, code.rows(), code.cols(), kBlockSize);
    auto stats = hybrid ? code.recover_single_column_hybrid(v, 1)
                        : code.recover_single_column_plain(v, 1);
    benchmark::DoNotOptimize(stats.cells_read);
  }
  state.SetLabel(hybrid ? "hybrid" : "plain");
}

}  // namespace

#define C56_REGISTER(id, name)                                               \
  BENCHMARK_CAPTURE(BM_Encode, name, id)->Arg(5)->Arg(7)->Arg(13);           \
  BENCHMARK_CAPTURE(BM_DecodeTwoColumns, name##_fast, id, false)             \
      ->Arg(5)                                                               \
      ->Arg(13);                                                             \
  BENCHMARK_CAPTURE(BM_DecodeTwoColumns, name##_generic, id, true)           \
      ->Arg(5)                                                               \
      ->Arg(13);

C56_REGISTER(c56::CodeId::kCode56, code56)
C56_REGISTER(c56::CodeId::kRdp, rdp)
C56_REGISTER(c56::CodeId::kEvenOdd, evenodd)
C56_REGISTER(c56::CodeId::kXCode, xcode)
C56_REGISTER(c56::CodeId::kPCode, pcode)
C56_REGISTER(c56::CodeId::kHCode, hcode)
C56_REGISTER(c56::CodeId::kHdp, hdp)

BENCHMARK_CAPTURE(BM_HybridSingleRecovery, hybrid, true)->Arg(5)->Arg(13);
BENCHMARK_CAPTURE(BM_HybridSingleRecovery, plain, false)->Arg(5)->Arg(13);

BENCHMARK_MAIN();
