// Benchmark of the controller's sub-block delta plane: page-sized
// writes into larger blocks, per-page and batched per stripe, against
// the whole-block read-modify-write baseline (C56_SUBBLOCK=0 routing).
// Results print as a table and land in BENCH_smallwrite.json.
//
// Two throughputs per workload, as in controller_throughput: in-memory
// wall clock, and a device-model throughput that prices the counted
// I/O through the repo's sim::DiskParams — every access pays one head
// reposition (seek + avg rotation), every byte moved pays transfer
// time. A range access repositions exactly like a block access (the
// DiskArray counts it as one run), so the per-page delta path wins
// only bytes; the ranged batch variant is where the plane earns its
// keep: deltas coalesce per parity block across the batch, so a
// full-stripe batch of pages touches each parity once instead of once
// per page, cutting repositions *and* bytes.
//
// Two exit-code gates, run by CI as --smoke:
//   1. whole-block identity: write_range with len == block_size must
//      price identically to write() on the device model (same counted
//      reads, writes, runs, bytes — deterministic) and must not be
//      slower in memory (noise-tolerant ratio with retries).
//   2. delta speedup: 4K pages batched per stripe through the delta
//      plane must be >= 2x the per-page whole-block RMW baseline on
//      the device model.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "codes/registry.hpp"
#include "migration/controller.hpp"
#include "migration/disk_array.hpp"
#include "sim/disk_model.hpp"
#include "sim/workload.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "xorblk/buffer.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kP = 7;
constexpr std::size_t kBlock = 65536;
constexpr std::size_t kPage = 4096;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

enum class Mode {
  kBlockWrite,  // ctrl.write() of the patched whole block (reference)
  kWholeRmw,    // write_range with the delta plane disabled
  kDelta,       // write_range, per page
  kDeltaBatch,  // write_range batch, one call per stripe
};

const char* to_string(Mode m) {
  switch (m) {
    case Mode::kBlockWrite: return "write()";
    case Mode::kWholeRmw: return "whole RMW";
    case Mode::kDelta: return "delta";
    case Mode::kDeltaBatch: return "delta batch";
  }
  return "?";
}

struct Measurement {
  double mbps = 0;          // in-memory wall clock
  double device_mbps = 0;   // counted I/O priced through sim::DiskParams
  double runs_per_page = 0; // head repositions per page written
  double bytes_per_page = 0;// payload bytes moved per page written
};

/// Price a counted pass on the positional disk model: one reposition
/// (seek + average rotation) per run, transfer at the sustained rate
/// for every byte actually moved (ranges move only their length).
double device_model_mbps(std::uint64_t runs, std::uint64_t bytes,
                         std::size_t payload_bytes) {
  const c56::sim::DiskParams d;
  const double reposition_ms = d.avg_seek_ms + d.avg_rotational_ms();
  const double ms = static_cast<double>(runs) * reposition_ms +
                    static_cast<double>(bytes) / (d.transfer_mb_s * 1e3);
  return ms > 0 ? static_cast<double>(payload_bytes) / ms / 1e3 : 0;
}

class Bench {
 public:
  Bench(std::int64_t stripes, double min_seconds)
      : stripes_(stripes), min_seconds_(min_seconds) {
    // Random pools the per-page payloads slice from; two of them,
    // alternated per pass, so repeat passes always carry a non-zero
    // delta (the planner skips idempotent writes without touching
    // disk).
    c56::Rng rng(0xC56'5111);
    pool_a_ = c56::Buffer(kPoolBytes);
    pool_b_ = c56::Buffer(kPoolBytes);
    rng.fill(pool_a_.data(), kPoolBytes);
    rng.fill(pool_b_.data(), kPoolBytes);
  }

  /// Sequential sweep: every logical block gets one `len`-byte write
  /// per pass, at a pass-rotated common offset.
  Measurement run(Mode mode, std::size_t len) {
    return run_ops(mode, len, {});
  }

  /// Workload-driven: replay the write requests of a page-sized
  /// small-write stream from sim::make_workload (offsets swept
  /// deterministically per request).
  Measurement run_workload(Mode mode, std::size_t len,
                           const std::vector<std::int64_t>& logicals) {
    return run_ops(mode, len, logicals);
  }

 private:
  static constexpr std::size_t kPoolBytes = 1 << 21;

  Measurement run_ops(Mode mode, std::size_t len,
                      std::vector<std::int64_t> order) {
    auto code = c56::make_code(c56::CodeId::kCode56, kP);
    const auto per_stripe = static_cast<std::int64_t>(code->data_cell_count());
    c56::mig::DiskArray array(code->cols(), stripes_ * code->rows(), kBlock);
    c56::mig::ArrayController ctrl(array, std::move(code));
    ctrl.set_subblock_delta(mode != Mode::kWholeRmw);
    const std::int64_t logical = ctrl.logical_blocks();
    if (order.empty()) {
      order.resize(static_cast<std::size_t>(logical));
      for (std::int64_t l = 0; l < logical; ++l) {
        order[static_cast<std::size_t>(l)] = l;
      }
    }
    const auto pages = static_cast<double>(order.size());
    const std::size_t slots = kBlock / len;

    c56::Buffer patched(kBlock);
    std::vector<c56::mig::ArrayController::SubWrite> batch;
    int pass = 0;
    auto op = [&] {
      const std::uint8_t* pool =
          (pass & 1) ? pool_b_.data() : pool_a_.data();
      const std::size_t off =
          (static_cast<std::size_t>(pass) % slots) * len;
      ++pass;
      auto payload = [&](std::size_t i) {
        return std::span<const std::uint8_t>(
            pool + (i * kPage) % (kPoolBytes - len), len);
      };
      switch (mode) {
        case Mode::kBlockWrite:
          // The app-level whole-block idiom: fetch, patch, store.
          for (std::size_t i = 0; i < order.size(); ++i) {
            const std::int64_t l = order[i];
            ctrl.read(l, patched.span());
            const auto in = payload(i);
            std::memcpy(patched.data() + off, in.data(), len);
            ctrl.write(l, patched.span());
          }
          break;
        case Mode::kWholeRmw:
        case Mode::kDelta:
          for (std::size_t i = 0; i < order.size(); ++i) {
            ctrl.write_range(order[i], static_cast<std::int64_t>(off),
                             payload(i));
          }
          break;
        case Mode::kDeltaBatch:
          for (std::size_t i = 0; i < order.size();) {
            // One batch per stripe of the sweep order.
            const std::int64_t stripe = order[i] / per_stripe;
            batch.clear();
            for (; i < order.size() && order[i] / per_stripe == stripe;
                 ++i) {
              batch.push_back({order[i], static_cast<std::int64_t>(off),
                               payload(i)});
            }
            ctrl.write_range(batch);
          }
          break;
      }
    };

    op();  // warm up
    const std::uint64_t rr0 = array.total_read_runs();
    const std::uint64_t wr0 = array.total_write_runs();
    const std::uint64_t rb0 = array.total_read_bytes();
    const std::uint64_t wb0 = array.total_write_bytes();
    op();  // counted pass
    const std::uint64_t runs = array.total_read_runs() - rr0 +
                               array.total_write_runs() - wr0;
    const std::uint64_t bytes = array.total_read_bytes() - rb0 +
                                array.total_write_bytes() - wb0;
    Measurement m;
    m.runs_per_page = static_cast<double>(runs) / pages;
    m.bytes_per_page = static_cast<double>(bytes) / pages;
    const auto payload_bytes = static_cast<std::size_t>(pages) * len;
    m.device_mbps = device_model_mbps(runs, bytes, payload_bytes);

    std::size_t passes = 0;
    const auto t0 = Clock::now();
    double elapsed = 0;
    do {
      op();
      ++passes;
      elapsed = seconds_since(t0);
    } while (elapsed < min_seconds_);
    m.mbps = static_cast<double>(payload_bytes) *
             static_cast<double>(passes) / elapsed / 1e6;
    return m;
  }

  std::int64_t stripes_;
  double min_seconds_;
  c56::Buffer pool_a_, pool_b_;
};

void json_entry(std::ostringstream& json, const char* workload,
                std::size_t len, Mode mode, const Measurement& m,
                bool last) {
  json << "    {\"workload\": \"" << workload << "\", \"len\": " << len
       << ", \"mode\": \"" << to_string(mode) << "\", \"mbps\": " << m.mbps
       << ", \"device_mbps\": " << m.device_mbps
       << ", \"runs_per_page\": " << m.runs_per_page
       << ", \"bytes_per_page\": " << m.bytes_per_page << "}"
       << (last ? "" : ",") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const std::int64_t stripes = smoke ? 8 : 32;
  const double min_seconds = smoke ? 0.02 : 0.2;
  Bench bench(stripes, min_seconds);

  std::printf(
      "Sub-block delta plane: page writes into %zu B blocks\np=%d "
      "(Code 5-6), %lld stripes, in-memory array%s\n\n",
      kBlock, kP, static_cast<long long>(stripes), smoke ? " [smoke]" : "");

  std::ostringstream json;
  json << "{\n  \"p\": " << kP << ",\n  \"stripes\": " << stripes
       << ",\n  \"block_bytes\": " << kBlock << ",\n  \"page_bytes\": "
       << kPage << ",\n  \"smoke\": " << (smoke ? "true" : "false")
       << ",\n  \"workloads\": [\n";

  c56::TextTable t({"workload", "len", "mode", "MB/s", "dev MB/s",
                    "runs/page", "bytes/page"});
  auto add_row = [&](const char* workload, std::size_t len, Mode mode,
                     const Measurement& m) {
    t.add_row({workload, std::to_string(len), to_string(mode),
               c56::TextTable::fmt(m.mbps, 1),
               c56::TextTable::fmt(m.device_mbps, 3),
               c56::TextTable::fmt(m.runs_per_page, 2),
               c56::TextTable::fmt(m.bytes_per_page, 0)});
  };

  // Sequential page sweeps at a few write sizes: per-page the delta
  // plane saves bytes only; batched it also coalesces parity
  // repositions across each stripe.
  Measurement gate_whole{}, gate_batch{};
  for (const std::size_t len : {kPage, std::size_t{16384}}) {
    const Measurement whole = bench.run(Mode::kWholeRmw, len);
    const Measurement delta = bench.run(Mode::kDelta, len);
    const Measurement batch = bench.run(Mode::kDeltaBatch, len);
    if (len == kPage) {
      gate_whole = whole;
      gate_batch = batch;
    }
    add_row("seq sweep", len, Mode::kWholeRmw, whole);
    add_row("seq sweep", len, Mode::kDelta, delta);
    add_row("seq sweep", len, Mode::kDeltaBatch, batch);
    json_entry(json, "seq sweep", len, Mode::kWholeRmw, whole, false);
    json_entry(json, "seq sweep", len, Mode::kDelta, delta, false);
    json_entry(json, "seq sweep", len, Mode::kDeltaBatch, batch, false);
  }

  // Workload-driven: the page-sized small-write family from
  // sim::make_workload, replayed per request (uniform addresses).
  {
    c56::sim::WorkloadParams wp;
    wp.disks = 1;  // address space = logical blocks, mapped below
    auto code = c56::make_code(c56::CodeId::kCode56, kP);
    wp.blocks_per_disk = stripes * code->data_cell_count();
    code.reset();
    wp.block_bytes = kBlock;
    wp.write_bytes = kPage;
    wp.read_fraction = 0.0;
    wp.iops = 2000.0;
    wp.horizon_ms = smoke ? 250.0 : 1000.0;
    wp.seed = 0xC56'5112;
    std::vector<std::int64_t> logicals;
    for (const c56::sim::Request& r : c56::sim::make_workload(wp)) {
      logicals.push_back(static_cast<std::int64_t>(r.lba) /
                         static_cast<std::int64_t>(kBlock / 512));
    }
    const Measurement whole =
        bench.run_workload(Mode::kWholeRmw, kPage, logicals);
    const Measurement delta =
        bench.run_workload(Mode::kDelta, kPage, logicals);
    add_row("uniform pages", kPage, Mode::kWholeRmw, whole);
    add_row("uniform pages", kPage, Mode::kDelta, delta);
    json_entry(json, "uniform pages", kPage, Mode::kWholeRmw, whole, false);
    json_entry(json, "uniform pages", kPage, Mode::kDelta, delta, false);
  }

  // Whole-block identity: len == block_size through write_range must
  // match the dedicated whole-block path.
  Measurement id_write = bench.run(Mode::kBlockWrite, kBlock);
  Measurement id_range = bench.run(Mode::kDelta, kBlock);
  // write() needs no separate app-level read: subtract the fetch the
  // kBlockWrite idiom pays so the counted sides compare the same work.
  id_write.runs_per_page -= 1.0;
  id_write.bytes_per_page -= static_cast<double>(kBlock);
  const c56::sim::DiskParams dp;
  id_write.device_mbps =
      static_cast<double>(kBlock) /
      (id_write.runs_per_page * (dp.avg_seek_ms + dp.avg_rotational_ms()) +
       id_write.bytes_per_page / (dp.transfer_mb_s * 1e3)) /
      1e3;
  add_row("full block", kBlock, Mode::kBlockWrite, id_write);
  add_row("full block", kBlock, Mode::kDelta, id_range);
  json_entry(json, "full block", kBlock, Mode::kBlockWrite, id_write, false);
  json_entry(json, "full block", kBlock, Mode::kDelta, id_range, true);

  std::ostringstream table_out;
  t.print(table_out);
  std::fputs(table_out.str().c_str(), stdout);

  // Gate 1: deterministic I/O identity of the full-block range path
  // (counted accesses per page equal), plus a noise-tolerant in-memory
  // not-slower check (the range call is the same code path behind one
  // length test). Retries forgive scheduler spikes, not regressions.
  const bool id_io_pass =
      id_range.runs_per_page == id_write.runs_per_page &&
      id_range.bytes_per_page == id_write.bytes_per_page;
  double id_ratio = id_write.mbps > 0 ? id_range.mbps / id_write.mbps : 0;
  for (int attempt = 1; attempt < 3 && id_ratio < 0.9; ++attempt) {
    std::printf("full-block ratio %.3f below gate; remeasuring (%d/2)\n",
                id_ratio, attempt);
    Measurement again_w = bench.run(Mode::kBlockWrite, kBlock);
    const Measurement again_r = bench.run(Mode::kDelta, kBlock);
    if (again_w.mbps > 0) {
      id_ratio = std::max(id_ratio, again_r.mbps / again_w.mbps);
    }
  }
  const bool id_pass = id_io_pass && id_ratio >= 0.9;

  // Gate 2: 4K pages batched through the delta plane vs per-page
  // whole-block RMW, on the deterministic device model.
  const double speedup = gate_whole.device_mbps > 0
                             ? gate_batch.device_mbps / gate_whole.device_mbps
                             : 0;
  const bool delta_pass = speedup >= 2.0;

  json << "  ],\n  \"gates\": {\n"
       << "    \"full_block_identity\": {\"io_identical\": "
       << (id_io_pass ? "true" : "false")
       << ", \"mem_ratio\": " << id_ratio
       << ", \"criteria\": \"counted I/O equal and mem ratio >= 0.9\", "
          "\"pass\": "
       << (id_pass ? "true" : "false") << "},\n"
       << "    \"delta_speedup\": {\"whole_device_mbps\": "
       << gate_whole.device_mbps
       << ", \"batch_device_mbps\": " << gate_batch.device_mbps
       << ", \"device_speedup\": " << speedup
       << ", \"criteria\": \"4K-into-64K batched delta >= 2x whole-block "
          "RMW on the device model\", \"pass\": "
       << (delta_pass ? "true" : "false") << "}\n  }\n}\n";

  std::printf(
      "\nfull-block identity: I/O %s, mem ratio %.3f (need >= 0.9) -> %s\n",
      id_io_pass ? "identical" : "MISMATCH", id_ratio,
      id_pass ? "PASS" : "FAIL");
  std::printf(
      "4K-into-64K delta: device model %.3f -> %.3f MB/s (%.2fx, need >= "
      "2.0) -> %s\n",
      gate_whole.device_mbps, gate_batch.device_mbps, speedup,
      delta_pass ? "PASS" : "FAIL");

  if (FILE* f = std::fopen("BENCH_smallwrite.json", "w")) {
    std::fputs(json.str().c_str(), f);
    std::fclose(f);
    std::printf("wrote BENCH_smallwrite.json\n");
  }
  return id_pass && delta_pass ? 0 : 1;
}
