// Figure 16: conversion time without load balancing support
// (B*Te == 100%). Time is the sum over sequential phases of the
// busiest disk's I/O count; Code 5-6 finishes in B*Te/3 at p=5 (the
// Section V-A example) because only the new disk takes writes while
// reads spread across the original spindles.

#include <iostream>

#include "analysis/report.hpp"

int main() {
  const auto metric = [](const c56::mig::ConversionCosts& c) {
    return c.time;
  };
  std::cout << "Figure 16 -- conversion time, no load balancing "
               "(relative to B*Te == 100%)\n\n";
  c56::ana::conversion_table(c56::ana::figure_conversion_set(false),
                             "conversion time", metric, /*as_percent=*/true)
      .print(std::cout);

  std::cout << "\nTrend with increasing disks (Code 5-6 direct, NLB):\n\n";
  c56::ana::conversion_table(
      c56::ana::family_sweep(c56::CodeId::kCode56,
                             c56::mig::Approach::kDirect, false),
      "conversion time", metric, /*as_percent=*/true)
      .print(std::cout);
  return 0;
}
