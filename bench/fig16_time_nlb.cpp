// Figure 16: conversion time without load balancing support
// (B*Te == 100%). Time is the sum over sequential phases of the
// busiest disk's I/O count; Code 5-6 finishes in B*Te/3 at p=5 (the
// Section V-A example) because only the new disk takes writes while
// reads spread across the original spindles.
//
// Alongside the analytic table, a live single-worker Code 5-6
// conversion runs under a MetricsSampler + MigrationMonitor and its
// sampled progress-vs-time curve (watermark rows, EWMA rate, ETA)
// lands in BENCH_fig16.json next to the analytic values.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "analysis/report.hpp"
#include "layout/raid.hpp"
#include "migration/journal.hpp"
#include "migration/monitor.hpp"
#include "migration/online.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "util/rng.hpp"
#include "xorblk/xor.hpp"

namespace {

void fill_raid5(c56::mig::DiskArray& array, int m, std::uint64_t seed) {
  const std::size_t bs = array.block_bytes();
  c56::Rng rng(seed);
  std::vector<std::uint8_t> block(bs), parity(bs);
  for (std::int64_t row = 0; row < array.blocks_per_disk(); ++row) {
    std::fill(parity.begin(), parity.end(), 0);
    const int pdisk = c56::raid5_parity_disk(
        c56::Raid5Flavor::kLeftAsymmetric, static_cast<int>(row % m), m);
    for (int d = 0; d < m; ++d) {
      if (d == pdisk) continue;
      rng.fill(block.data(), bs);
      std::ranges::copy(block, array.raw_block(d, row).begin());
      c56::xor_into(parity.data(), block.data(), bs);
    }
    std::ranges::copy(parity, array.raw_block(pdisk, row).begin());
  }
}

std::int64_t metric_or(const c56::obs::Snapshot& s, const std::string& name,
                       std::int64_t fallback) {
  const c56::obs::Metric* m = s.find(name);
  return m ? m->gauge : fallback;
}

/// Run one monitored conversion and append its sampled time series as
/// a JSON array of {t_ms, rows_done, rows_total, rate, eta_ms}.
void run_live_series(std::ostream& json, int workers, const char* id) {
  using namespace c56;
  obs::set_metrics_enabled(true);
  obs::Registry reg;
  obs::EventLog log;
  log.set_stderr_echo(false);

  const int p = 5, m = p - 1;
  const std::int64_t groups = 512;
  constexpr std::size_t kBlock = 1024;
  mig::DiskArray array(m, groups * (p - 1), kBlock);
  fill_raid5(array, m, 0xC56u);
  mig::MemoryCheckpointSink sink;
  mig::OnlineMigrator migrator(array, p);
  migrator.attach_journal(sink);
  migrator.set_workers(workers);
  migrator.attach_metrics(reg);
  migrator.attach_events(log, id);

  mig::MonitorConfig mcfg;
  mcfg.migration_id = id;
  mig::MigrationMonitor monitor(migrator, reg, log, mcfg);
  obs::MetricsSampler sampler(reg);
  sampler.add_probe([&monitor] { monitor.poll(); });

  sampler.sample_once();  // t=0 baseline before the workers launch
  migrator.start();
  while (migrator.converting()) {
    sampler.sample_once();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  migrator.finish();
  sampler.sample_once();  // terminal sample: rows_done == rows_total

  const std::vector<obs::MetricsSample> samples = sampler.samples();
  const std::uint64_t t0 = samples.empty() ? 0 : samples.front().t_us;
  json << "  \"live\": {\"p\": " << p << ", \"m\": " << m
       << ", \"groups\": " << groups << ", \"workers\": " << workers
       << ", \"block_bytes\": " << kBlock << ",\n   \"series\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const obs::Snapshot& s = samples[i].snap;
    json << "    {\"t_ms\": "
         << static_cast<double>(samples[i].t_us - t0) / 1000.0
         << ", \"rows_done\": " << metric_or(s, "migration_rows_done", 0)
         << ", \"rows_total\": " << metric_or(s, "migration_rows_total", 0)
         << ", \"rate_rows_per_sec_x1000\": "
         << metric_or(s, "migration_rate_rows_per_sec_x1000", 0)
         << ", \"eta_ms\": " << metric_or(s, "migration_eta_ms", -1) << "}"
         << (i + 1 < samples.size() ? "," : "") << "\n";
  }
  json << "   ]}\n";
  std::printf("\nlive conversion (%d worker%s): %lld rows in %zu samples\n",
              workers, workers == 1 ? "" : "s",
              static_cast<long long>(monitor.rows_done()), samples.size());
}

}  // namespace

int main() {
  const auto metric = [](const c56::mig::ConversionCosts& c) {
    return c.time;
  };
  std::cout << "Figure 16 -- conversion time, no load balancing "
               "(relative to B*Te == 100%)\n\n";
  const auto specs = c56::ana::figure_conversion_set(false);
  c56::ana::conversion_table(specs, "conversion time", metric,
                             /*as_percent=*/true)
      .print(std::cout);

  std::cout << "\nTrend with increasing disks (Code 5-6 direct, NLB):\n\n";
  c56::ana::conversion_table(
      c56::ana::family_sweep(c56::CodeId::kCode56,
                             c56::mig::Approach::kDirect, false),
      "conversion time", metric, /*as_percent=*/true)
      .print(std::cout);

  std::ostringstream json;
  json << "{\n  \"bench\": \"fig16_time_nlb\",\n  \"analytic\": [\n";
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const c56::mig::ConversionCosts c = c56::mig::analyze(specs[i]);
    json << "    {\"label\": \""
         << c56::obs::detail::json_escape(specs[i].label())
         << "\", \"time_pct\": " << c.time * 100.0 << "}"
         << (i + 1 < specs.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  run_live_series(json, /*workers=*/1, "fig16-nlb");
  json << "}\n";

  if (FILE* f = std::fopen("BENCH_fig16.json", "w")) {
    std::fputs(json.str().c_str(), f);
    std::fclose(f);
    std::printf("wrote BENCH_fig16.json\n");
  }
  return 0;
}
