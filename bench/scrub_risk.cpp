// Scrub risk: Monte-Carlo silent-corruption survival under an online
// scrubber. Each grid point crosses a per-write bit-rot rate with a
// scrub cadence (a repairing pass every K application writes; 0 = no
// scrubbing until the end of the run) and a migration phase:
//
//   * "during"  -- the fault plan is armed while the RAID-5 -> RAID-6
//     conversion is still running, so rot lands on both sides of the
//     watermark and the scrubber works from watermark-aware trust
//     domains (horizontal-only groups can detect but not locate).
//   * "after"   -- the conversion completes clean first, then rot is
//     armed; every group has both parity families.
//
// Per trial the bench replays W random single-block application writes
// against an OnlineMigrator, tracking a model of every logical block it
// wrote. Write-time rot events are timestamped from the DiskArray's
// silent-corruption counter; a scrub pass that reports dirty stripes
// "detects" the outstanding plants, giving a detection latency in
// application writes. After the run the migration is finished, up to
// three cleanup passes repair what they can, and the trial is scored:
//
//   repair%   cells repaired / corruptions planted
//   latency   mean writes between a plant and the first dirty pass
//   loss      fraction of trials where some modeled block reads back
//             wrong after cleanup (bake-in and ambiguity both land
//             here -- this is the silent-data-loss probability)
//   verify    fraction of trials where the final array verifies RAID-6
//
// Results print as a table and land in BENCH_scrub.json.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "layout/raid.hpp"
#include "migration/disk_array.hpp"
#include "migration/online.hpp"
#include "scrub/scrubber.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "xorblk/xor.hpp"

namespace {

constexpr std::size_t kBlockBytes = 64;
constexpr int kP = 5;
constexpr std::int64_t kGroups = 8;

void fill_raid5(c56::mig::DiskArray& array, int m, std::uint64_t seed) {
  c56::Rng rng(seed);
  std::vector<std::uint8_t> block(kBlockBytes), parity(kBlockBytes);
  for (std::int64_t row = 0; row < array.blocks_per_disk(); ++row) {
    std::fill(parity.begin(), parity.end(), 0);
    const int pdisk = c56::raid5_parity_disk(
        c56::Raid5Flavor::kLeftAsymmetric, static_cast<int>(row % m), m);
    for (int d = 0; d < m; ++d) {
      if (d == pdisk) continue;
      rng.fill(block.data(), kBlockBytes);
      std::ranges::copy(block, array.raw_block(d, row).begin());
      c56::xor_into(parity.data(), block.data(), kBlockBytes);
    }
    std::ranges::copy(parity, array.raw_block(pdisk, row).begin());
  }
}

struct GridPoint {
  double rot_rate;
  int scrub_every;  // app writes per repairing pass; 0 = end-of-run only
  bool during_migration;
};

struct GridResult {
  std::uint64_t planted = 0;
  std::uint64_t repaired = 0;
  std::uint64_t ambiguous = 0;
  std::uint64_t repair_failures = 0;
  double latency_sum = 0.0;  // writes from plant to first dirty pass
  std::int64_t latency_n = 0;
  int loss_trials = 0;    // >= 1 modeled block read back wrong
  int verify_ok = 0;      // final verify_raid6() passed
  int trials = 0;
};

void run_trial(const GridPoint& g, std::uint64_t seed, int writes,
               GridResult& out) {
  const int m = kP - 1;
  c56::mig::DiskArray array(m, kGroups * (kP - 1), kBlockBytes);
  fill_raid5(array, m, seed);
  c56::mig::OnlineMigrator mig(array, kP);
  c56::mig::FaultPlan plan;
  plan.bit_rot_rate = g.rot_rate;
  plan.seed = seed * 0x9E3779B97F4A7C15ULL + 1;

  if (g.during_migration) {
    array.set_fault_plan(plan);
    mig.set_workers(1);
    mig.start();
  } else {
    mig.start();
    mig.finish();
    array.set_fault_plan(plan);
  }

  c56::scrub::Scrubber scrubber(array, mig);
  scrubber.set_repair(true);
  scrubber.set_rate(0);  // unpaced: the bench measures risk, not I/O cost

  c56::Rng rng(seed ^ 0x5C12BULL);
  const std::int64_t logical = mig.logical_blocks();
  std::map<std::int64_t, std::vector<std::uint8_t>> model;
  std::vector<std::uint8_t> buf(kBlockBytes);
  std::uint64_t seen_corruptions = array.silent_corruptions();
  std::vector<int> pending;  // write index of each undetected plant

  for (int i = 0; i < writes; ++i) {
    const auto l = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(logical)));
    rng.fill(buf.data(), buf.size());
    (void)mig.write_block(l, buf);
    model[l] = buf;
    const std::uint64_t now = array.silent_corruptions();
    for (; seen_corruptions < now; ++seen_corruptions) pending.push_back(i);

    if (g.scrub_every > 0 && (i + 1) % g.scrub_every == 0) {
      const auto rep = scrubber.run_pass();
      if (!pending.empty()) {
        if (rep.dirty > 0) {
          for (int at : pending) {
            out.latency_sum += i - at;
            ++out.latency_n;
          }
        }
        // dirty == 0 with plants outstanding means a later write
        // overwrote the rot (self-healed) or the group was deferred;
        // either way those plants leave the latency sample.
        pending.clear();
      }
    }
  }

  mig.finish();
  for (int pass = 0; pass < 3; ++pass) {
    if (scrubber.run_pass().clean()) break;
  }

  bool lost = false;
  for (const auto& [l, want] : model) {
    if (mig.read_block(l, buf).status != c56::mig::IoStatus::kOk ||
        std::memcmp(buf.data(), want.data(), kBlockBytes) != 0) {
      lost = true;
      break;
    }
  }

  const auto stats = scrubber.stats();
  out.planted += array.silent_corruptions();
  out.repaired += stats.cells_repaired;
  out.ambiguous += stats.ambiguous;
  out.repair_failures += stats.repair_failures;
  out.loss_trials += lost ? 1 : 0;
  out.verify_ok += mig.verify_raid6() ? 1 : 0;
  ++out.trials;
}

}  // namespace

int main(int argc, char** argv) {
  int trials = argc > 1 ? std::atoi(argv[1]) : 6;
  int writes = argc > 2 ? std::atoi(argv[2]) : 400;
  if (trials < 1) trials = 1;
  if (writes < 1) writes = 1;

  const std::vector<GridPoint> grid = [] {
    std::vector<GridPoint> g;
    for (double rot : {2e-3, 2e-2}) {
      for (int every : {0, 100, 25}) {
        for (bool during : {false, true}) {
          g.push_back({rot, every, during});
        }
      }
    }
    return g;
  }();

  std::vector<GridResult> results(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    for (int t = 0; t < trials; ++t) {
      run_trial(grid[i], 0xC56'5C12 + i * 1000 + t, writes, results[i]);
    }
  }

  std::printf("scrub risk: p=%d groups=%lld, %d trials x %d writes\n\n", kP,
              static_cast<long long>(kGroups), trials, writes);
  c56::TextTable t({"rot/write", "scrub every", "phase", "planted", "repaired",
                    "repair", "latency (wr)", "P(loss)", "verify ok"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& g = grid[i];
    const auto& r = results[i];
    t.add_row({c56::TextTable::fmt(g.rot_rate, 3),
               g.scrub_every == 0 ? "off" : std::to_string(g.scrub_every),
               g.during_migration ? "during" : "after",
               std::to_string(r.planted), std::to_string(r.repaired),
               r.planted > 0
                   ? c56::TextTable::pct(static_cast<double>(r.repaired) /
                                         static_cast<double>(r.planted))
                   : "-",
               r.latency_n > 0
                   ? c56::TextTable::fmt(r.latency_sum / r.latency_n, 1)
                   : "-",
               c56::TextTable::pct(static_cast<double>(r.loss_trials) /
                                   r.trials),
               c56::TextTable::pct(static_cast<double>(r.verify_ok) /
                                   r.trials)});
  }
  std::ostringstream table;
  t.print(table);
  std::fputs(table.str().c_str(), stdout);

  std::ostringstream json;
  json << "{\n  \"p\": " << kP << ",\n  \"groups\": " << kGroups
       << ",\n  \"block_bytes\": " << kBlockBytes
       << ",\n  \"trials\": " << trials << ",\n  \"writes\": " << writes
       << ",\n  \"grid\": [\n";
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& g = grid[i];
    const auto& r = results[i];
    json << "    {\"bit_rot_rate\": " << g.rot_rate
         << ", \"scrub_every_writes\": " << g.scrub_every
         << ", \"phase\": \"" << (g.during_migration ? "during" : "after")
         << "\", \"planted\": " << r.planted
         << ", \"repaired\": " << r.repaired
         << ", \"ambiguous\": " << r.ambiguous
         << ", \"repair_failures\": " << r.repair_failures
         << ", \"mean_detection_latency_writes\": "
         << (r.latency_n > 0 ? r.latency_sum / r.latency_n : -1.0)
         << ", \"loss_probability\": "
         << static_cast<double>(r.loss_trials) / r.trials
         << ", \"verify_ok_fraction\": "
         << static_cast<double>(r.verify_ok) / r.trials << "}"
         << (i + 1 == grid.size() ? "\n" : ",\n");
  }
  json << "  ]\n}\n";
  if (FILE* f = std::fopen("BENCH_scrub.json", "w")) {
    std::fputs(json.str().c_str(), f);
    std::fclose(f);
    std::printf("\nwrote BENCH_scrub.json\n");
  }
  return 0;
}
