// Figure 18: storage efficiency of a RAID-6 built with Code 5-6
// (virtual disks for non-prime sizes, Eq. 6) against a typical MDS
// RAID-6 over the same m+1 disks. The virtual-disk penalty stays under
// a few percent (the paper reports < 3.8%).

#include <cstdio>
#include <sstream>

#include "codes/code56.hpp"
#include "util/table.hpp"

int main() {
  std::printf(
      "Figure 18 -- storage efficiency vs number of RAID-5 disks m\n\n");
  c56::TextTable t({"m", "p", "virtual", "Code 5-6", "typical RAID-6",
                    "gap (pp)"});
  double worst = 0.0;
  for (int m = 2; m <= 24; ++m) {
    const c56::Code56 code = c56::Code56::for_raid5(m);
    const double eff = code.storage_efficiency();
    const double ideal = code.ideal_raid6_efficiency();
    const double gap = ideal - eff;  // percentage points, as the paper
    worst = std::max(worst, gap);
    t.add_row({std::to_string(m), std::to_string(code.p()),
               std::to_string(code.virtual_disks()),
               c56::TextTable::pct(eff), c56::TextTable::pct(ideal),
               c56::TextTable::fmt(gap * 100.0, 2)});
  }
  std::ostringstream os;
  t.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf(
      "\nworst-case virtual-disk efficiency gap: %.2f percentage points "
      "(paper: < 3.8%%, at m=3)\n",
      worst * 100.0);
  return 0;
}
