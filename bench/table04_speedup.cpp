// Table IV: speedup of Code 5-6 (direct conversion) over every other
// code using its best approach, at matched array sizes n in {5, 6, 7},
// without (NLB) and with (LB) load balancing support. The paper reports
// speedups between 1.27 and 3.38.

#include <iostream>

#include "analysis/speedup.hpp"
#include "util/table.hpp"

int main() {
  for (bool lb : {false, true}) {
    std::cout << "Table IV -- Code 5-6 speedup over best approaches ("
              << (lb ? "LB" : "NLB") << ")\n\n";
    c56::TextTable t({"n", "vs code", "their best conversion", "speedup"});
    for (const c56::ana::SpeedupEntry& e : c56::ana::table4(lb)) {
      t.add_row({std::to_string(e.n), to_string(e.other),
                 e.other_spec.label(),
                 c56::TextTable::fmt(e.speedup, 2) + "x"});
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
