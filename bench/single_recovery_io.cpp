// Section III-E(4): hybrid single-disk recovery. For each prime p and
// each failed data column, compare the distinct block reads of the
// conventional all-horizontal recovery against the hybrid
// horizontal/diagonal schedule (the Xiang et al. approach applied to
// Code 5-6). At p=5 the paper reports 9 vs 12 reads (-33%).

#include <cstdio>
#include <sstream>

#include "codes/code56.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  std::printf("Hybrid vs plain single-disk recovery reads per stripe\n\n");
  c56::TextTable t({"p", "failed col", "plain reads", "hybrid reads",
                    "reduction"});
  constexpr std::size_t kBlock = 512;
  for (int p : {5, 7, 11, 13}) {
    c56::Code56 code(p);
    c56::Buffer buf(static_cast<std::size_t>(code.cell_count()) * kBlock);
    c56::StripeView v = c56::StripeView::over(buf, code.rows(), code.cols(),
                                              kBlock);
    c56::Rng rng(1);
    for (int r = 0; r < code.rows(); ++r) {
      for (int c = 0; c < code.cols(); ++c) {
        if (code.kind({r, c}) == c56::CellKind::kData) {
          rng.fill(v.block({r, c}).data(), kBlock);
        }
      }
    }
    code.encode(v);
    for (int col = 0; col <= p - 2; ++col) {
      c56::Buffer w1 = buf, w2 = buf;
      c56::StripeView v1 =
          c56::StripeView::over(w1, code.rows(), code.cols(), kBlock);
      c56::StripeView v2 =
          c56::StripeView::over(w2, code.rows(), code.cols(), kBlock);
      const auto plain = code.recover_single_column_plain(v1, col);
      const auto hybrid = code.recover_single_column_hybrid(v2, col);
      t.add_row({std::to_string(p), std::to_string(col),
                 std::to_string(plain.cells_read),
                 std::to_string(hybrid.cells_read),
                 c56::TextTable::pct(
                     1.0 - static_cast<double>(hybrid.cells_read) /
                               plain.cells_read)});
    }
  }
  std::ostringstream os;
  t.print(os);
  std::fputs(os.str().c_str(), stdout);
  return 0;
}
