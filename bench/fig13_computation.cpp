// Figure 13: computation cost (XOR operations, normalized to B = 100%).
// Includes the cross-code comparison at the paper's disk counts and the
// growing-p trend ("with increasing number of disks, the computation
// cost rises due to longer parity chains"). Code 5-6 decreases the
// computation cost by up to 76.4% (Section V-B).

#include <iostream>

#include "analysis/report.hpp"

int main() {
  using c56::mig::Approach;
  using c56::mig::ConversionCosts;
  const auto metric = [](const ConversionCosts& c) { return c.xor_per_block; };

  std::cout << "Figure 13 -- computation cost (XORs / B, B == 100%)\n\n";
  c56::ana::conversion_table(c56::ana::figure_conversion_set(false),
                             "XORs per data block", metric,
                             /*as_percent=*/true)
      .print(std::cout);

  std::cout << "\nTrend with increasing disks (per code family, best-known "
               "approach):\n\n";
  struct Family {
    c56::CodeId code;
    Approach approach;
  };
  for (const Family f : {Family{c56::CodeId::kRdp, Approach::kViaRaid4},
                         Family{c56::CodeId::kEvenOdd, Approach::kViaRaid4},
                         Family{c56::CodeId::kXCode, Approach::kDirect},
                         Family{c56::CodeId::kCode56, Approach::kDirect}}) {
    c56::ana::conversion_table(c56::ana::family_sweep(f.code, f.approach,
                                                      false),
                               "XORs per data block", metric,
                               /*as_percent=*/true)
        .print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
