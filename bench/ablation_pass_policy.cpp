// Ablation (DESIGN.md §4): how much of each baseline's simulated
// conversion time comes from re-reading data once per parity geometry?
// kSinglePass models an ideal converter that computes every parity set
// in one streaming sweep; kPassPerParitySet models the memory-bounded
// converter the traces default to. Code 5-6 has a single new parity
// set, so its time is identical under both policies — the structural
// reason its conversion streams so well.

#include <cstdio>
#include <sstream>

#include "migration/trace_gen.hpp"
#include "sim/event_sim.hpp"
#include "util/table.hpp"

namespace {

double simulate_ms(const c56::mig::ConversionSpec& spec,
                   c56::mig::PassPolicy policy, std::int64_t blocks) {
  const c56::mig::ConversionPlanner planner(
      spec, c56::Raid5Flavor::kLeftAsymmetric, policy);
  c56::mig::TraceParams params;
  params.total_data_blocks = blocks;
  const c56::sim::Trace trace = make_conversion_trace(planner, params);
  c56::sim::ArraySimulator sim(spec.n());
  return sim.run(trace).makespan_ms;
}

}  // namespace

int main(int argc, char** argv) {
  using c56::mig::Approach;
  using c56::mig::ConversionSpec;
  using c56::mig::PassPolicy;
  const std::int64_t blocks = argc > 1 ? std::atoll(argv[1]) : 30'000;

  std::printf(
      "Ablation: single-pass vs pass-per-parity-set conversion traces "
      "(LB, 4 KB, B=%lld)\n\n",
      static_cast<long long>(blocks));
  c56::TextTable t({"conversion", "single-pass (s)", "per-set (s)",
                    "re-read penalty"});
  std::vector<ConversionSpec> specs{
      ConversionSpec::canonical(c56::CodeId::kRdp, Approach::kViaRaid0, 5,
                                true),
      ConversionSpec::canonical(c56::CodeId::kEvenOdd, Approach::kViaRaid0, 5,
                                true),
      ConversionSpec::canonical(c56::CodeId::kHCode, Approach::kViaRaid0, 5,
                                true),
      ConversionSpec::canonical(c56::CodeId::kXCode, Approach::kDirect, 5,
                                true),
      ConversionSpec::direct_code56(4, true),
  };
  for (const auto& spec : specs) {
    const double one = simulate_ms(spec, PassPolicy::kSinglePass, blocks);
    const double per = simulate_ms(spec, PassPolicy::kPassPerParitySet,
                                   blocks);
    t.add_row({spec.label(), c56::TextTable::fmt(one / 1e3, 2),
               c56::TextTable::fmt(per / 1e3, 2),
               c56::TextTable::pct(per / one - 1.0)});
  }
  std::ostringstream os;
  t.print(os);
  std::fputs(os.str().c_str(), stdout);
  return 0;
}
