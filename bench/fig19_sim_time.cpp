// Figure 19: simulated conversion time by block size (4 KB and 8 KB),
// load balanced, on the discrete-event disk-array simulator (the
// DiskSim substitute; see DESIGN.md). The paper uses B = 0.6 million
// blocks; pass a different B as argv[1] to scale runtime (the default
// here is 60k blocks, which preserves every ratio).

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "analysis/speedup.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  c56::mig::TraceParams params;
  params.total_data_blocks = argc > 1 ? std::atoll(argv[1]) : 60'000;

  for (std::uint32_t block : {4096u, 8192u}) {
    params.block_bytes = block;
    for (int p : {5, 7}) {
      std::printf(
          "Figure 19 -- simulated conversion time, block %u KB, p=%d, "
          "B=%lld (LB)\n\n",
          block / 1024, p, static_cast<long long>(params.total_data_blocks));
      c56::TextTable t({"conversion", "time (s)", "vs Code 5-6"});
      const auto rows = c56::ana::table5(p, params);
      if (!rows.empty()) {
        t.add_row({"RAID-5->RAID-6(Code 5-6)",
                   c56::TextTable::fmt(rows[0].code56_ms / 1e3, 1), "1.00x"});
      }
      for (const auto& e : rows) {
        t.add_row({e.other_spec.label(),
                   c56::TextTable::fmt(e.other_ms / 1e3, 1),
                   c56::TextTable::fmt(e.speedup, 2) + "x"});
      }
      std::ostringstream os;
      t.print(os);
      std::fputs(os.str().c_str(), stdout);
      std::printf("\n");
    }
  }
  return 0;
}
