// Table III, "single write performance", quantified: average disk I/Os
// (reads + writes) needed to update one data block, per code, measured
// through the block-level controller. Optimal-update codes (Code 5-6,
// X-Code, P-Code, H-Code) pay exactly 6; RDP and HDP pay more on the
// cells coupled through their parity interactions; EVENODD's adjuster
// diagonal makes some writes touch every diagonal parity ("Low" in the
// paper's table).

#include <cstdio>
#include <sstream>

#include "codes/registry.hpp"
#include "migration/controller.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

struct Cost {
  double avg;
  double worst;
};

Cost measure(c56::CodeId id, int p) {
  constexpr std::size_t kBlock = 4096;
  auto code = c56::make_code(id, p);
  c56::mig::DiskArray array(code->cols(), 4LL * code->rows(), kBlock);
  c56::mig::ArrayController ctrl(array, std::move(code));
  c56::Rng rng(1);
  c56::Buffer buf(kBlock);
  for (std::int64_t l = 0; l < ctrl.logical_blocks(); ++l) {
    rng.fill(buf.data(), kBlock);
    ctrl.write(l, buf.span());
  }
  double total = 0;
  double worst = 0;
  int writes = 0;
  for (std::int64_t l = 0; l < ctrl.logical_blocks(); ++l) {
    const auto before = array.total_reads() + array.total_writes();
    rng.fill(buf.data(), kBlock);
    ctrl.write(l, buf.span());
    const auto cost =
        static_cast<double>(array.total_reads() + array.total_writes() -
                            before);
    total += cost;
    worst = std::max(worst, cost);
    ++writes;
  }
  return {total / writes, worst};
}

}  // namespace

int main() {
  std::printf(
      "Table III (single write performance), measured: disk I/Os per "
      "single-block update\n\n");
  c56::TextTable t({"code", "p", "avg I/Os", "worst I/Os", "paper rating"});
  const struct {
    c56::CodeId id;
    int p;
    const char* rating;
  } rows[] = {
      {c56::CodeId::kEvenOdd, 5, "Low"},  {c56::CodeId::kRdp, 5, "Medium"},
      {c56::CodeId::kXCode, 5, "High"},   {c56::CodeId::kPCode, 7, "High"},
      {c56::CodeId::kHCode, 5, "High"},   {c56::CodeId::kHdp, 5, "Medium"},
      {c56::CodeId::kCode56, 5, "High"},
  };
  for (const auto& row : rows) {
    const Cost c = measure(row.id, row.p);
    t.add_row({to_string(row.id), std::to_string(row.p),
               c56::TextTable::fmt(c.avg, 2), c56::TextTable::fmt(c.worst, 0),
               row.rating});
  }
  std::ostringstream os;
  t.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf(
      "\n6 I/Os == optimal update complexity (read+write the block and "
      "two parities).\n");
  return 0;
}
