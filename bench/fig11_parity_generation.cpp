// Figure 11: new parity generation ratio. Code 5-6 only generates the
// dedicated diagonal column -- 1/(p-2) of B (33.3% at p=5) -- while the
// via-RAID-0 route regenerates every parity of the target code (up to
// 80% fewer new parities for Code 5-6, Section V-B).

#include <iostream>

#include "analysis/report.hpp"

int main() {
  std::cout << "Figure 11 -- new parity generation ratio (relative to B)\n\n";
  c56::ana::conversion_table(
      c56::ana::figure_conversion_set(false), "new parity generation ratio",
      [](const c56::mig::ConversionCosts& c) {
        return c.new_parity_generation_ratio;
      },
      /*as_percent=*/true)
      .print(std::cout);
  return 0;
}
