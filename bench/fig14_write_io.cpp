// Figure 14: write I/Os in the conversion process (B writes == 100%).
// Code 5-6 writes only the p-1 diagonal parities per stripe -- B/(p-2)
// -- decreasing write I/Os by up to 80% (Section V-B).

#include <iostream>

#include "analysis/report.hpp"

int main() {
  const auto metric = [](const c56::mig::ConversionCosts& c) {
    return c.write_io;
  };
  std::cout << "Figure 14 -- write I/Os (relative to B == 100%)\n\n";
  c56::ana::conversion_table(c56::ana::figure_conversion_set(false),
                             "write I/Os", metric, /*as_percent=*/true)
      .print(std::cout);

  std::cout << "\nTrend with increasing disks (Code 5-6 direct):\n\n";
  c56::ana::conversion_table(
      c56::ana::family_sweep(c56::CodeId::kCode56,
                             c56::mig::Approach::kDirect, false),
      "write I/Os", metric, /*as_percent=*/true)
      .print(std::cout);
  return 0;
}
