// Figure 12: extra space ratio -- the fraction of every disk that must
// be reserved before conversion. In-place vertical codes pay the most
// (X-Code: 2/p, i.e. 40% at p=5, Fig. 1(c)); Code 5-6 and the dedicated
// parity-disk routes reserve nothing.

#include <iostream>

#include "analysis/report.hpp"

int main() {
  std::cout << "Figure 12 -- extra space ratio (fraction of each disk)\n\n";
  c56::ana::conversion_table(
      c56::ana::figure_conversion_set(false), "extra space ratio",
      [](const c56::mig::ConversionCosts& c) { return c.extra_space_ratio; },
      /*as_percent=*/true)
      .print(std::cout);
  return 0;
}
