// Algorithm 2 under load: wall-clock conversion time of the online
// migrator while an application thread issues writes at increasing
// rates, plus the converter's preemption count. Demonstrates the
// paper's claim that conversion and application I/O coexist because
// they touch disjoint disks except on writes.

#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

#include "layout/raid.hpp"
#include "migration/online.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "xorblk/xor.hpp"

namespace {

constexpr std::size_t kBlock = 4096;

void fill_raid5(c56::mig::DiskArray& array, int m) {
  c56::Rng rng(1);
  std::vector<std::uint8_t> parity(kBlock);
  for (std::int64_t row = 0; row < array.blocks_per_disk(); ++row) {
    std::fill(parity.begin(), parity.end(), 0);
    const int pdisk = c56::raid5_parity_disk(
        c56::Raid5Flavor::kLeftAsymmetric, static_cast<int>(row % m), m);
    for (int d = 0; d < m; ++d) {
      if (d == pdisk) continue;
      auto blk = array.raw_block(d, row);
      rng.fill(blk.data(), kBlock);
      c56::xor_into(parity.data(), blk.data(), kBlock);
    }
    std::ranges::copy(parity, array.raw_block(pdisk, row).begin());
  }
}

struct Result {
  double conversion_ms;
  std::uint64_t app_ops;
  std::uint64_t preemptions;
  bool verified;
};

Result run(int p, std::int64_t groups, int writer_threads) {
  const int m = p - 1;
  c56::mig::DiskArray array(m, groups * (p - 1), kBlock);
  fill_raid5(array, m);
  c56::mig::OnlineMigrator mig(array, p);
  std::atomic<std::uint64_t> ops{0};
  std::atomic<bool> stop{false};

  const auto t0 = std::chrono::steady_clock::now();
  mig.start();
  std::vector<std::thread> writers;
  for (int w = 0; w < writer_threads; ++w) {
    writers.emplace_back([&, w] {
      c56::Rng rng(static_cast<std::uint64_t>(w) + 100);
      c56::Buffer buf(kBlock);
      const std::int64_t logical = mig.logical_blocks();
      while (!stop.load(std::memory_order_relaxed)) {
        const auto l = static_cast<std::int64_t>(
            rng.next_below(static_cast<std::uint64_t>(logical)));
        rng.fill(buf.data(), kBlock);
        mig.write_block(l, buf.span());
        ops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  mig.finish();
  const auto t1 = std::chrono::steady_clock::now();
  stop.store(true);
  for (auto& t : writers) t.join();

  Result r;
  r.conversion_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.app_ops = ops.load();
  r.preemptions = mig.stats().interruptions;
  r.verified = mig.verify_raid6();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const int p = argc > 1 ? std::atoi(argv[1]) : 5;
  const std::int64_t groups = argc > 2 ? std::atoll(argv[2]) : 4096;

  std::printf(
      "Online migration under load (p=%d, %lld stripe groups, %zu B "
      "blocks, in-memory array)\n\n",
      p, static_cast<long long>(groups), kBlock);
  c56::TextTable t({"writer threads", "conversion (ms)", "app writes",
                    "preemptions", "RAID-6 valid"});
  for (int writers : {0, 1, 2, 4}) {
    const Result r = run(p, groups, writers);
    t.add_row({std::to_string(writers),
               c56::TextTable::fmt(r.conversion_ms, 1),
               std::to_string(r.app_ops), std::to_string(r.preemptions),
               r.verified ? "yes" : "NO"});
  }
  std::ostringstream os;
  t.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf(
      "\nEvery run must end with a byte-consistent RAID-6 regardless of "
      "write pressure\n(Algorithm 2's interrupt/resume protocol).\n");
  return 0;
}
