// Benchmark of the ArrayController's two I/O paths: the per-block
// read-modify-write pair (Table III's metric) versus the batched
// stripe-aware planner behind the ranged read/write API. Measures MB/s
// of logical payload and disk I/Os per block across sequential/random
// patterns, block/row/stripe-sized requests, healthy and degraded
// arrays, and with the write-through stripe cache off and on. Results
// print as tables and land in BENCH_controller.json.
//
// Two throughputs per workload: the in-memory wall clock (planner +
// memcpy cost; the array is RAM, so this is compute-bound), and a
// device-model throughput that prices the counted I/O through the
// sim DiskParams the repo uses everywhere else — every vectored run
// pays one head reposition (seek + avg rotation), every block pays
// transfer time. The run accounting is the point of the vectored
// DiskArray API: a full-stripe batched write lands as a handful of
// per-column runs where the per-block path issues 6 discrete RMW
// requests per block.
//
// The acceptance gate is the sequential full-stripe write, healthy,
// cache off: the batched path must not be slower in memory AND must be
// >= 3x on the device model. A second gate prices the observability
// layer in its shipped-default state: the same workload with a metrics
// registry AND an event log attached (both disabled), a metrics
// sampler constructed but never started, and an idle scrubber
// (constructed, metrics/events attached, never started) must stay
// within 2% of a detached controller — the whole layer is supposed to
// cost one predictable branch, and an idle scrubber nothing at all. The process exits non-zero if either gate fails
// — CI runs this with --smoke as a perf regression tripwire. The
// report embeds a registry snapshot of the attached controller under
// "metrics_snapshot".

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "codes/registry.hpp"
#include "migration/controller.hpp"
#include "migration/disk_array.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "scrub/scrubber.hpp"
#include "sim/disk_model.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "xorblk/buffer.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kP = 5;
constexpr std::size_t kBlock = 4096;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Config {
  bool sequential;        // request offsets: in order vs shuffled
  std::int64_t count;     // blocks per request
  const char* size_name;  // "block" | "row" | "stripe"
  bool degraded;          // one failed disk
  bool cached;            // stripe cache sized to hold the whole array
};

struct Measurement {
  double mbps;         // in-memory wall clock
  double device_mbps;  // counted I/O priced through sim::DiskParams
  double io_per_blk;   // discrete blocks transferred per payload block
  double runs_per_blk; // head repositions per payload block
};

/// Price a counted pass on the positional disk model: one reposition
/// (seek + average rotation) per vectored run, transfer at the
/// sustained rate for every block moved.
double device_model_mbps(std::uint64_t runs, std::uint64_t io_blocks,
                         std::size_t payload_bytes) {
  const c56::sim::DiskParams d;
  const double reposition_ms = d.avg_seek_ms + d.avg_rotational_ms();
  const double xfer_bytes_per_ms = d.transfer_mb_s * 1e3;
  const double ms = static_cast<double>(runs) * reposition_ms +
                    static_cast<double>(io_blocks) *
                        static_cast<double>(kBlock) / xfer_bytes_per_ms;
  return ms > 0 ? static_cast<double>(payload_bytes) / ms / 1e3 : 0;
}

class Bench {
 public:
  Bench(std::int64_t stripes, double min_seconds)
      : stripes_(stripes), min_seconds_(min_seconds) {}

  Measurement run_write(const Config& cfg, bool batched) {
    return run(cfg, batched, /*reads=*/false);
  }
  Measurement run_read(const Config& cfg, bool batched) {
    return run(cfg, batched, /*reads=*/true);
  }

 private:
  Measurement run(const Config& cfg, bool batched, bool reads) {
    auto code = c56::make_code(c56::CodeId::kCode56, kP);
    c56::mig::DiskArray array(code->cols(), stripes_ * code->rows(), kBlock);
    c56::mig::ArrayController ctrl(array, std::move(code));
    if (cfg.degraded) ctrl.fail_disk(1);
    if (cfg.cached) {
      ctrl.set_cache_stripes(static_cast<std::size_t>(stripes_));
    }
    const std::int64_t logical = ctrl.logical_blocks();
    const std::int64_t chunks = logical / cfg.count;
    const std::size_t bytes = static_cast<std::size_t>(logical) * kBlock;

    // A shuffled permutation of chunk offsets (every chunk exactly once)
    // keeps the byte accounting exact and avoids rewarding either path
    // for the idempotent-write shortcut on duplicate offsets.
    std::vector<std::int64_t> offs(static_cast<std::size_t>(chunks));
    for (std::int64_t i = 0; i < chunks; ++i) {
      offs[static_cast<std::size_t>(i)] = i * cfg.count;
    }
    c56::Rng rng(0xC56'0BE);
    if (!cfg.sequential) {
      for (std::size_t i = offs.size() - 1; i > 0; --i) {
        std::swap(offs[i], offs[rng.next_below(i + 1)]);
      }
    }

    // Two payloads, alternated per pass, so repeat passes always carry
    // a non-zero delta (the per-block path skips no-op writes).
    c56::Buffer pay_a(bytes), pay_b(bytes), out(bytes);
    rng.fill(pay_a.data(), bytes);
    rng.fill(pay_b.data(), bytes);

    int pass = 0;
    auto op = [&] {
      std::uint8_t* pay = (pass++ & 1) ? pay_b.data() : pay_a.data();
      for (std::int64_t off : offs) {
        const auto at = static_cast<std::size_t>(off) * kBlock;
        const auto len = static_cast<std::size_t>(cfg.count) * kBlock;
        if (reads) {
          if (batched) {
            ctrl.read(off, cfg.count, {out.data() + at, len});
          } else {
            for (std::int64_t k = 0; k < cfg.count; ++k) {
              ctrl.read(off + k, {out.data() + at + k * kBlock, kBlock});
            }
          }
        } else {
          if (batched) {
            ctrl.write(off, cfg.count, {pay + at, len});
          } else {
            for (std::int64_t k = 0; k < cfg.count; ++k) {
              ctrl.write(off + k, {pay + at + k * kBlock, kBlock});
            }
          }
        }
      }
    };

    op();  // warm up (reads also need a seeded array: pass 0 wrote it)
    const std::uint64_t r0 = array.total_reads();
    const std::uint64_t w0 = array.total_writes();
    const std::uint64_t rr0 = array.total_read_runs();
    const std::uint64_t wr0 = array.total_write_runs();
    op();  // counted pass for the per-block I/O cost
    const std::uint64_t io_blocks =
        array.total_reads() - r0 + array.total_writes() - w0;
    const std::uint64_t runs =
        array.total_read_runs() - rr0 + array.total_write_runs() - wr0;
    const auto touched = static_cast<double>(chunks * cfg.count);
    Measurement m;
    m.io_per_blk = static_cast<double>(io_blocks) / touched;
    m.runs_per_blk = static_cast<double>(runs) / touched;
    m.device_mbps = device_model_mbps(
        runs, io_blocks, static_cast<std::size_t>(chunks * cfg.count) * kBlock);

    std::size_t passes = 0;
    const auto t0 = Clock::now();
    double elapsed = 0;
    do {
      op();
      ++passes;
      elapsed = seconds_since(t0);
    } while (elapsed < min_seconds_);
    m.mbps = static_cast<double>(bytes) * static_cast<double>(passes) /
             elapsed / 1e6;
    return m;
  }

  std::int64_t stripes_;
  double min_seconds_;
};

/// Observability-overhead gate: alternating (plain, attached) trials of
/// the sequential full-stripe batched write on one controller that
/// toggles the full layer in its shipped-default state: registry +
/// event log attached but disabled (one branch each on the hot path),
/// sampler constructed but never start()ed (inert by contract). The
/// MB/s shown are each side's best trial; the gate statistic is built
/// from grouped trials (see below). Also snapshots the attached
/// registry after one *enabled* pass so the embedded report carries
/// real values.
struct OverheadReport {
  double detached_mbps = 0;
  double disabled_mbps = 0;
  double ratio = 0;  // median over groups of disabled/detached ratios
  std::string snapshot_json;
};

OverheadReport measure_metrics_overhead(std::int64_t stripes, int groups,
                                        int passes_per_trial) {
  auto code = c56::make_code(c56::CodeId::kCode56, kP);
  const int disks = code->cols();
  const std::int64_t bpd = stripes * code->rows();
  c56::obs::Registry reg;  // declared first: must outlive the attachments
  c56::obs::EventLog log;
  c56::mig::DiskArray array(disks, bpd, kBlock);
  c56::mig::ArrayController ctrl(array, std::move(code));
  c56::obs::MetricsSampler sampler(reg);  // never started: inert
  c56::scrub::Scrubber scrubber(array, ctrl);  // never started: inert
  c56::obs::set_metrics_enabled(false);
  c56::obs::set_events_enabled(false);

  // One controller, one array: the two sides toggle the attachments on
  // the same memory, so page placement and cache luck cancel instead of
  // biasing whichever side happened to allocate better.
  const auto attach = [&] {
    ctrl.attach_metrics(reg);
    array.attach_metrics(reg);
    log.attach_metrics(reg);
    scrubber.attach_metrics(reg);
    ctrl.attach_events(log);
    scrubber.attach_events(log);
  };
  const auto detach = [&] {
    ctrl.detach_metrics();
    array.detach_metrics();
    log.detach_metrics();
    scrubber.detach_metrics();
    ctrl.detach_events();
    scrubber.detach_events();
  };

  const std::int64_t logical = ctrl.logical_blocks();
  const std::size_t bytes = static_cast<std::size_t>(logical) * kBlock;
  c56::Buffer pay_a(bytes), pay_b(bytes);
  c56::Rng rng(0xC56'0BE5);
  rng.fill(pay_a.data(), bytes);
  rng.fill(pay_b.data(), bytes);

  auto time_side = [&](bool attached) {
    if (attached) {
      attach();
    } else {
      detach();
    }
    const auto t0 = Clock::now();
    for (int p = 0; p < passes_per_trial; ++p) {
      ctrl.write(0, logical, {(p & 1) ? pay_b.data() : pay_a.data(), bytes});
    }
    return seconds_since(t0);
  };
  time_side(false);  // warm both sides up
  time_side(true);
  // Measuring a 2% bound on a machine that may be running other work
  // takes three layers of noise control: within a group the two sides
  // alternate and each keeps its minimum, so a descheduling spike voids
  // one trial instead of one side; a group's ratio pairs minima taken
  // close together in time, so slow drift (frequency scaling, a
  // neighbour's sustained burst) cancels in the quotient; and the gate
  // uses the median across groups, so one unlucky group cannot decide
  // it. Global min-vs-min alone was observed 2% off on a busy
  // single-core host.
  constexpr int kRunsPerGroup = 3;
  double best_plain = 1e300, best_attached = 1e300;
  std::vector<double> ratios;
  ratios.reserve(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    double group_plain = 1e300, group_attached = 1e300;
    for (int t = 0; t < kRunsPerGroup; ++t) {
      group_plain = std::min(group_plain, time_side(false));
      group_attached = std::min(group_attached, time_side(true));
    }
    best_plain = std::min(best_plain, group_plain);
    best_attached = std::min(best_attached, group_attached);
    ratios.push_back(group_plain / group_attached);
  }
  std::sort(ratios.begin(), ratios.end());
  OverheadReport r;
  const auto total = static_cast<double>(bytes) * passes_per_trial;
  r.detached_mbps = total / best_plain / 1e6;
  r.disabled_mbps = total / best_attached / 1e6;
  r.ratio = ratios[ratios.size() / 2];

  // One enabled pass so the embedded snapshot is non-trivial (the
  // events_emitted counter picks up the rate-limited ranged-write
  // debug events).
  detach();
  attach();
  c56::obs::set_metrics_enabled(true);
  c56::obs::set_events_enabled(true);
  ctrl.write(0, logical, {pay_a.data(), bytes});
  c56::obs::set_metrics_enabled(false);
  c56::obs::set_events_enabled(false);
  r.snapshot_json = reg.to_json();
  while (!r.snapshot_json.empty() && r.snapshot_json.back() == '\n') {
    r.snapshot_json.pop_back();
  }
  return r;
}

std::string flags(const Config& c) {
  std::string s = c.degraded ? "degraded" : "healthy";
  s += c.cached ? "+cache" : "";
  return s;
}

void json_side(std::ostringstream& json, const char* name,
               const Measurement& m) {
  json << "\"" << name << "\": {\"mbps\": " << m.mbps
       << ", \"device_mbps\": " << m.device_mbps
       << ", \"io_per_block\": " << m.io_per_blk
       << ", \"runs_per_block\": " << m.runs_per_blk << "}";
}

void json_entry(std::ostringstream& json, const char* kind, const Config& c,
                const Measurement& pb, const Measurement& ba, bool last) {
  json << "    {\"op\": \"" << kind << "\", \"pattern\": \""
       << (c.sequential ? "seq" : "rand") << "\", \"size\": \"" << c.size_name
       << "\", \"count\": " << c.count << ", \"degraded\": "
       << (c.degraded ? "true" : "false") << ", \"cache\": "
       << (c.cached ? "true" : "false") << ",\n     ";
  json_side(json, "per_block", pb);
  json << ",\n     ";
  json_side(json, "batched", ba);
  json << ",\n     \"mem_speedup\": " << (pb.mbps > 0 ? ba.mbps / pb.mbps : 0)
       << ", \"device_speedup\": "
       << (pb.device_mbps > 0 ? ba.device_mbps / pb.device_mbps : 0) << "}"
       << (last ? "" : ",") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const std::int64_t stripes = smoke ? 64 : 256;
  const double min_seconds = smoke ? 0.02 : 0.2;
  Bench bench(stripes, min_seconds);

  // Request sizes for Code 5-6 at p=5: one block, one row of data cells
  // (the planner's full-row direct-parity case), one full stripe.
  auto code = c56::make_code(c56::CodeId::kCode56, kP);
  const auto per_stripe = static_cast<std::int64_t>(code->data_cell_count());
  const std::int64_t row_cells = per_stripe / code->rows();
  code.reset();

  const std::vector<Config> write_cfgs = {
      {true, 1, "block", false, false},
      {true, row_cells, "row", false, false},
      {true, per_stripe, "stripe", false, false},
      {false, 1, "block", false, false},
      {false, row_cells, "row", false, false},
      {false, per_stripe, "stripe", false, false},
      {true, 1, "block", true, false},
      {true, per_stripe, "stripe", true, false},
      {true, 1, "block", false, true},
      {true, per_stripe, "stripe", false, true},
  };
  const std::vector<Config> read_cfgs = {
      {true, per_stripe, "stripe", false, false},
      {true, per_stripe, "stripe", false, true},
      {false, 1, "block", true, false},
  };

  std::printf(
      "Controller I/O paths: per-block RMW vs batched stripe-aware "
      "planner\np=%d (Code 5-6), %lld stripes, %zu B blocks, in-memory "
      "array%s\n\n",
      kP, static_cast<long long>(stripes), kBlock, smoke ? " [smoke]" : "");

  std::ostringstream json;
  json << "{\n  \"p\": " << kP << ",\n  \"stripes\": " << stripes
       << ",\n  \"block_bytes\": " << kBlock << ",\n  \"smoke\": "
       << (smoke ? "true" : "false") << ",\n  \"workloads\": [\n";

  c56::TextTable t({"op", "pattern", "size", "state", "per-blk MB/s",
                    "batched MB/s", "mem x", "dev x", "IO/blk pb",
                    "IO/blk ba"});
  Measurement gate_pb{}, gate_ba{};
  auto add_row = [&](const char* kind, const Config& c, const Measurement& pb,
                     const Measurement& ba) {
    t.add_row({kind, c.sequential ? "seq" : "rand", c.size_name, flags(c),
               c56::TextTable::fmt(pb.mbps, 1), c56::TextTable::fmt(ba.mbps, 1),
               c56::TextTable::fmt(pb.mbps > 0 ? ba.mbps / pb.mbps : 0, 2),
               c56::TextTable::fmt(
                   pb.device_mbps > 0 ? ba.device_mbps / pb.device_mbps : 0, 2),
               c56::TextTable::fmt(pb.io_per_blk, 2),
               c56::TextTable::fmt(ba.io_per_blk, 2)});
  };
  for (std::size_t i = 0; i < write_cfgs.size(); ++i) {
    const Config& c = write_cfgs[i];
    const Measurement pb = bench.run_write(c, /*batched=*/false);
    const Measurement ba = bench.run_write(c, /*batched=*/true);
    if (c.sequential && c.count == per_stripe && !c.degraded && !c.cached) {
      gate_pb = pb;
      gate_ba = ba;
    }
    add_row("write", c, pb, ba);
    json_entry(json, "write", c, pb, ba, false);
  }
  for (std::size_t i = 0; i < read_cfgs.size(); ++i) {
    const Config& c = read_cfgs[i];
    const Measurement pb = bench.run_read(c, /*batched=*/false);
    const Measurement ba = bench.run_read(c, /*batched=*/true);
    add_row("read", c, pb, ba);
    json_entry(json, "read", c, pb, ba, i + 1 == read_cfgs.size());
  }
  std::ostringstream table_out;
  t.print(table_out);
  std::fputs(table_out.str().c_str(), stdout);

  const double mem_speedup =
      gate_pb.mbps > 0 ? gate_ba.mbps / gate_pb.mbps : 0;
  const double dev_speedup =
      gate_pb.device_mbps > 0 ? gate_ba.device_mbps / gate_pb.device_mbps : 0;
  const bool pass = gate_ba.mbps > gate_pb.mbps && dev_speedup >= 3.0;

  // Odd group counts keep the median an actual sample. The true ratio
  // is ~1.0 (one branch), so a genuine hot-path regression fails every
  // attempt — only scheduler noise benefits from the retries, which is
  // exactly what a perf tripwire should forgive.
  OverheadReport ov = measure_metrics_overhead(stripes, smoke ? 5 : 7, 16);
  for (int attempt = 1; attempt < 3 && ov.ratio < 0.98; ++attempt) {
    std::printf("observability overhead ratio %.3f below gate; remeasuring "
                "(%d/2 retries)\n", ov.ratio, attempt);
    const OverheadReport again =
        measure_metrics_overhead(stripes, smoke ? 5 : 7, 16);
    if (again.ratio > ov.ratio) ov = again;
  }
  const bool ov_pass = ov.ratio >= 0.98;

  json << "  ],\n  \"gate\": {\"workload\": \"seq full-stripe write, "
          "healthy, cache off\", \"per_block_mbps\": "
       << gate_pb.mbps << ", \"batched_mbps\": " << gate_ba.mbps
       << ", \"mem_speedup\": " << mem_speedup
       << ", \"per_block_device_mbps\": " << gate_pb.device_mbps
       << ", \"batched_device_mbps\": " << gate_ba.device_mbps
       << ", \"device_speedup\": " << dev_speedup
       << ", \"criteria\": \"batched >= per-block in memory and >= 3x on "
          "the device model\", \"pass\": "
       << (pass ? "true" : "false") << "},\n"
       << "  \"metrics_overhead\": {\"workload\": \"seq full-stripe "
          "batched write\", \"detached_mbps\": "
       << ov.detached_mbps << ", \"disabled_mbps\": " << ov.disabled_mbps
       << ", \"ratio\": " << ov.ratio
       << ", \"criteria\": \"registry + event log attached (disabled) + "
          "unarmed sampler >= 0.98x detached\", \"pass\": "
       << (ov_pass ? "true" : "false") << "},\n"
       << "  \"metrics_snapshot\": " << ov.snapshot_json << "\n}\n";

  std::printf(
      "\nsequential full-stripe write: in-memory %.1f -> %.1f MB/s "
      "(%.2fx), device model %.1f -> %.1f MB/s (%.2fx) -> %s\n",
      gate_pb.mbps, gate_ba.mbps, mem_speedup, gate_pb.device_mbps,
      gate_ba.device_mbps, dev_speedup, pass ? "PASS" : "FAIL");
  std::printf(
      "observability overhead (disabled registry + event log, unarmed "
      "sampler): %.1f -> %.1f MB/s (%.3fx, need >= 0.98) -> %s\n",
      ov.detached_mbps, ov.disabled_mbps, ov.ratio,
      ov_pass ? "PASS" : "FAIL");

  if (FILE* f = std::fopen("BENCH_controller.json", "w")) {
    std::fputs(json.str().c_str(), f);
    std::fclose(f);
    std::printf("wrote BENCH_controller.json\n");
  }
  return pass && ov_pass ? 0 : 1;
}
