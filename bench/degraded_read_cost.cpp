// Degraded-mode read amplification per code: with one failed disk, how
// many surviving blocks must be fetched to serve a read of a lost
// block? Reported per code as the average and worst recipe size over
// every (failed disk, lost cell) pair, plus Code 5-6's whole-disk
// hybrid rebuild (Section III-E(4)) for contrast with per-block
// reconstruction.

#include <cstdio>
#include <sstream>

#include "codes/code56.hpp"
#include "codes/registry.hpp"
#include "util/table.hpp"

int main() {
  std::printf(
      "Degraded read amplification (single failed disk): surviving "
      "blocks read per lost block\n\n");
  c56::TextTable t({"code", "p", "avg reads", "worst reads"});
  for (c56::CodeId id : c56::all_code_ids()) {
    const int p = 5;
    auto code = c56::make_code(id, p);
    double total = 0;
    std::size_t worst = 0;
    int samples = 0;
    for (int disk = 0; disk < code->cols(); ++disk) {
      const std::vector<int> cols{disk};
      auto recipes = code->solve_cells(code->erased_cells_of_columns(cols));
      if (!recipes) continue;
      for (const auto& r : *recipes) {
        total += static_cast<double>(r.sources.size());
        worst = std::max(worst, r.sources.size());
        ++samples;
      }
    }
    t.add_row({to_string(id), std::to_string(p),
               c56::TextTable::fmt(total / samples, 2),
               std::to_string(worst)});
  }
  std::ostringstream os;
  t.print(os);
  std::fputs(os.str().c_str(), stdout);

  std::printf(
      "\nWhole-disk rebuild reads per stripe (Code 5-6, plain vs hybrid "
      "schedule):\n\n");
  c56::TextTable t2({"p", "plain", "hybrid", "saved"});
  constexpr std::size_t kBlock = 64;
  for (int p : {5, 7, 11, 13}) {
    c56::Code56 code(p);
    c56::Buffer buf(static_cast<std::size_t>(code.cell_count()) * kBlock);
    c56::StripeView v =
        c56::StripeView::over(buf, code.rows(), code.cols(), kBlock);
    code.encode(v);
    c56::Buffer w1 = buf, w2 = buf;
    c56::StripeView s1 =
        c56::StripeView::over(w1, code.rows(), code.cols(), kBlock);
    c56::StripeView s2 =
        c56::StripeView::over(w2, code.rows(), code.cols(), kBlock);
    const auto plain = code.recover_single_column_plain(s1, 0);
    const auto hybrid = code.recover_single_column_hybrid(s2, 0);
    t2.add_row({std::to_string(p), std::to_string(plain.cells_read),
                std::to_string(hybrid.cells_read),
                c56::TextTable::pct(
                    1.0 - static_cast<double>(hybrid.cells_read) /
                              plain.cells_read)});
  }
  std::ostringstream os2;
  t2.print(os2);
  std::fputs(os2.str().c_str(), stdout);
  return 0;
}
