// Table VI: reliability of the conversion approaches, quantified. For
// each conversion of a 0.6M-block array (4 KB blocks, Te ~ 8.5 ms
// random access), print the conversion window, the failures tolerated
// inside it, and the probability of data loss during the window for a
// year-2 disk population (AFR 8.1%, Table I).

#include <cstdio>
#include <sstream>

#include "analysis/report.hpp"
#include "analysis/risk.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const double blocks = argc > 1 ? std::atof(argv[1]) : 600'000.0;
  const double te_ms = 8.5;
  const double afr = 0.081;

  std::printf(
      "Table VI (quantified) -- conversion-window risk, B=%.0f blocks, "
      "Te=%.1f ms, AFR=%.1f%%\n\n",
      blocks, te_ms, afr * 100);
  c56::TextTable t({"conversion", "window (h)", "tolerates",
                    "P(data loss)", "paper rating"});
  for (const auto& spec : c56::ana::figure_conversion_set(false)) {
    const auto risk =
        c56::ana::conversion_window_risk(spec, blocks, te_ms, afr);
    char prob[32];
    std::snprintf(prob, sizeof prob, "%.2e", risk.loss_probability);
    t.add_row({spec.label(), c56::TextTable::fmt(risk.window_hours, 2),
               std::to_string(risk.tolerated), prob,
               c56::ana::window_risk_rating(spec)});
  }
  std::ostringstream os;
  t.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf(
      "\nvia-RAID-0 runs its whole window with zero fault tolerance; the "
      "direct routes keep\nsingle-failure protection, and Code 5-6 never "
      "touches the old parities at all.\n");
  return 0;
}
