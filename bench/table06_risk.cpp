// Table VI: reliability of the conversion approaches, quantified and
// Monte-Carlo validated. Three experiments share one report:
//
//  1. The closed-form window risk (as before), now next to a simulated
//     data-loss frequency: disk lifetimes are sampled exponentially and
//     counted against the window's fault tolerance. Because real
//     windows are hours and the AFR is 8.1%, raw loss probabilities sit
//     around 1e-6 -- unmeasurable with feasible trials -- so both the
//     Monte-Carlo run and its closed-form reference use an accelerated
//     failure rate (AFR x ACCEL) and are compared at that scale.
//  2. The same sampling driven through the discrete-event simulator:
//     failures become DiskFail trace events injected into a small
//     conversion trace, and a trial loses data when the simulator's
//     max_concurrent_failures exceeds the window tolerance.
//  3. A live OnlineMigrator run under injected faults: single source
//     disk failures mid-conversion must be survived end-to-end
//     (degraded generation, rebuild, verify), double failures must
//     abort cleanly.
//
// Results print as tables and land in BENCH_risk.json.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/reliability.hpp"
#include "analysis/report.hpp"
#include "analysis/risk.hpp"
#include "layout/raid.hpp"
#include "migration/disk_array.hpp"
#include "migration/online.hpp"
#include "migration/plan.hpp"
#include "migration/trace_gen.hpp"
#include "sim/event_sim.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "xorblk/xor.hpp"

namespace {

constexpr double kAccel = 1000.0;  // failure-rate acceleration for MC
constexpr std::size_t kBlockBytes = 64;

/// Closed-form P(loss) at an arbitrary per-disk in-window failure
/// probability q (binomial, > tolerated failures).
double binomial_loss(int n, int tolerated, double q) {
  double p_ok = 0.0, comb = 1.0;
  for (int k = 0; k <= tolerated; ++k) {
    if (k > 0) comb = comb * (n - k + 1) / k;
    p_ok += comb * std::pow(q, k) * std::pow(1.0 - q, n - k);
  }
  return 1.0 - p_ok;
}

/// Sampled loss frequency: n exponential lifetimes against the window.
double mc_loss_freq(int n, int tolerated, double window_h, double lambda_h,
                    int trials, c56::Rng& rng) {
  int losses = 0;
  for (int t = 0; t < trials; ++t) {
    int failures = 0;
    for (int d = 0; d < n; ++d) {
      const double u = rng.next_double();
      const double life_h = -std::log1p(-u) / lambda_h;
      failures += life_h < window_h;
    }
    losses += failures > tolerated;
  }
  return static_cast<double>(losses) / trials;
}

/// Valid left-asymmetric RAID-5 with random contents (test fixture
/// idiom, reused for the live-migration trials).
void fill_raid5(c56::mig::DiskArray& array, int m, std::uint64_t seed) {
  c56::Rng rng(seed);
  std::vector<std::uint8_t> block(kBlockBytes), parity(kBlockBytes);
  for (std::int64_t row = 0; row < array.blocks_per_disk(); ++row) {
    std::fill(parity.begin(), parity.end(), 0);
    const int pdisk = c56::raid5_parity_disk(
        c56::Raid5Flavor::kLeftAsymmetric, static_cast<int>(row % m), m);
    for (int d = 0; d < m; ++d) {
      if (d == pdisk) continue;
      rng.fill(block.data(), kBlockBytes);
      std::ranges::copy(block, array.raw_block(d, row).begin());
      c56::xor_into(parity.data(), block.data(), kBlockBytes);
    }
    std::ranges::copy(parity, array.raw_block(pdisk, row).begin());
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const double blocks = argc > 1 ? std::atof(argv[1]) : 600'000.0;
  const double te_ms = 8.5;
  const double afr = 0.081;
  const int mc_trials = argc > 2 ? std::atoi(argv[2]) : 20'000;
  const double lambda_acc = c56::ana::lambda_per_hour(afr) * kAccel;
  c56::Rng rng(0xC56'0006);

  std::ostringstream json;
  json << "{\n  \"config\": {\"blocks\": " << blocks
       << ", \"te_ms\": " << te_ms << ", \"afr\": " << afr
       << ", \"accel\": " << kAccel << ", \"mc_trials\": " << mc_trials
       << "},\n";

  // ---- 1. Closed form vs sampled lifetimes -------------------------
  std::printf(
      "Table VI (quantified) -- conversion-window risk, B=%.0f blocks, "
      "Te=%.1f ms, AFR=%.1f%%\nMC columns use AFR x %.0f (%d trials)\n\n",
      blocks, te_ms, afr * 100, kAccel, mc_trials);
  c56::TextTable t({"conversion", "window (h)", "tolerates", "P(data loss)",
                    "P(loss) accel", "MC freq accel", "paper rating"});
  json << "  \"closed_form\": [\n";
  const auto specs = c56::ana::figure_conversion_set(false);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& spec = specs[i];
    const auto risk =
        c56::ana::conversion_window_risk(spec, blocks, te_ms, afr);
    const int n = spec.n();
    const double q_acc = 1.0 - std::exp(-lambda_acc * risk.window_hours);
    const double p_acc = binomial_loss(n, risk.tolerated, q_acc);
    const double mc = mc_loss_freq(n, risk.tolerated, risk.window_hours,
                                   lambda_acc, mc_trials, rng);
    char prob[32], proba[32], mcs[32];
    std::snprintf(prob, sizeof prob, "%.2e", risk.loss_probability);
    std::snprintf(proba, sizeof proba, "%.2e", p_acc);
    std::snprintf(mcs, sizeof mcs, "%.2e", mc);
    t.add_row({spec.label(), c56::TextTable::fmt(risk.window_hours, 2),
               std::to_string(risk.tolerated), prob, proba, mcs,
               c56::ana::window_risk_rating(spec)});
    json << "    {\"label\": \"" << json_escape(spec.label())
         << "\", \"window_hours\": " << risk.window_hours
         << ", \"tolerated\": " << risk.tolerated
         << ", \"loss_probability\": " << risk.loss_probability
         << ", \"loss_probability_accel\": " << p_acc
         << ", \"mc_loss_freq_accel\": " << mc << "}"
         << (i + 1 < specs.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  {
    std::ostringstream os;
    t.print(os);
    std::fputs(os.str().c_str(), stdout);
  }

  // ---- 2. DiskFail events through the simulator --------------------
  const int sim_trials = std::max(1, mc_trials / 100);
  std::printf(
      "\nSimulated conversions with injected DiskFail events "
      "(B=2000, %d trials, AFR x %.0f)\n\n",
      sim_trials, kAccel);
  c56::TextTable st({"conversion", "loss freq", "closed form",
                     "avg rejected I/Os"});
  json << "  \"simulated\": [\n";
  std::vector<c56::mig::ConversionSpec> sim_specs{
      c56::mig::ConversionSpec::direct_code56(4),
      c56::mig::ConversionSpec::canonical(c56::CodeId::kRdp,
                                          c56::mig::Approach::kViaRaid4, 5),
      c56::mig::ConversionSpec::canonical(c56::CodeId::kRdp,
                                          c56::mig::Approach::kViaRaid0, 5),
  };
  for (std::size_t i = 0; i < sim_specs.size(); ++i) {
    const auto& spec = sim_specs[i];
    c56::mig::ConversionPlanner planner(spec);
    c56::mig::TraceParams params;
    params.total_data_blocks = 2000;
    params.block_bytes = 4096;
    c56::sim::Trace trace = c56::mig::make_conversion_trace(planner, params);
    int n_phys = 0;
    for (const auto& ph : trace.phases) {
      for (const auto& r : ph.requests) n_phys = std::max(n_phys, r.disk + 1);
    }
    const int tolerated = c56::ana::window_fault_tolerance(spec);
    // The small trace's makespan stands in for the real window: each
    // disk fails inside it with the same accelerated probability the
    // closed-form column uses.
    const double window_h =
        c56::ana::conversion_window_risk(spec, blocks, te_ms, afr)
            .window_hours;
    const double q_acc = 1.0 - std::exp(-lambda_acc * window_h);
    c56::sim::ArraySimulator probe(n_phys);
    const double makespan = probe.run(trace).makespan_ms;
    int losses = 0;
    double rejected = 0.0;
    for (int trial = 0; trial < sim_trials; ++trial) {
      trace.phases[0].events.clear();
      for (int d = 0; d < n_phys; ++d) {
        if (rng.next_double() < q_acc) {
          trace.phases[0].events.push_back(
              {d, rng.next_double() * makespan,
               c56::sim::DiskEventKind::kDiskFail});
        }
      }
      c56::sim::ArraySimulator sim(n_phys);
      const auto res = sim.run(trace);
      losses += res.max_concurrent_failures > tolerated;
      rejected += static_cast<double>(res.requests_failed);
    }
    const double freq = static_cast<double>(losses) / sim_trials;
    const double closed = binomial_loss(n_phys, tolerated, q_acc);
    char fs[32], cs[32];
    std::snprintf(fs, sizeof fs, "%.3f", freq);
    std::snprintf(cs, sizeof cs, "%.3f", closed);
    st.add_row({spec.label(), fs, cs,
                c56::TextTable::fmt(rejected / sim_trials, 1)});
    json << "    {\"label\": \"" << json_escape(spec.label())
         << "\", \"trials\": " << sim_trials << ", \"loss_freq\": " << freq
         << ", \"closed_form_accel\": " << closed
         << ", \"avg_rejected_ios\": " << rejected / sim_trials << "}"
         << (i + 1 < sim_specs.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  {
    std::ostringstream os;
    st.print(os);
    std::fputs(os.str().c_str(), stdout);
  }

  // ---- 3. Live migrations under injected faults --------------------
  const int single_trials = 100, double_trials = 50;
  int survived = 0, clean_aborts = 0;
  {
    const int p = 5, m = 4;
    const std::int64_t groups = 4;
    for (int trial = 0; trial < single_trials; ++trial) {
      c56::mig::DiskArray array(m, groups * (p - 1), kBlockBytes);
      fill_raid5(array, m, 100 + static_cast<std::uint64_t>(trial));
      c56::mig::OnlineMigrator mig(array, p);
      c56::mig::FaultPlan plan;
      plan.disk_failures.push_back(
          {static_cast<int>(rng.next_below(static_cast<std::uint64_t>(m))),
           rng.next_below(static_cast<std::uint64_t>((p - 2) * groups))});
      array.set_fault_plan(plan);
      mig.start();
      mig.finish();
      if (mig.state() != c56::mig::MigrationState::kDone) continue;
      mig.rebuild_failed_disks();
      survived += mig.verify_raid6();
    }
    for (int trial = 0; trial < double_trials; ++trial) {
      c56::mig::DiskArray array(m, groups * (p - 1), kBlockBytes);
      fill_raid5(array, m, 200 + static_cast<std::uint64_t>(trial));
      c56::mig::OnlineMigrator mig(array, p);
      const int f1 = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(m)));
      const int f2 = (f1 + 1 + static_cast<int>(rng.next_below(
                                  static_cast<std::uint64_t>(m - 1)))) %
                     m;
      c56::mig::FaultPlan plan;
      plan.disk_failures.push_back({f1, rng.next_below(4)});
      plan.disk_failures.push_back({f2, rng.next_below(4)});
      array.set_fault_plan(plan);
      mig.start();
      mig.finish();
      clean_aborts += mig.state() == c56::mig::MigrationState::kAborted &&
                      !mig.abort_reason().empty();
    }
  }
  std::printf(
      "\nLive Code 5-6 migrations under injected faults (p=5, m=4):\n"
      "  single source-disk failure: %d/%d survived "
      "(degraded conversion + rebuild + verify)\n"
      "  double failure:             %d/%d aborted cleanly with a reason\n",
      survived, single_trials, clean_aborts, double_trials);
  json << "  \"live_migration\": {\"single_failure_trials\": " << single_trials
       << ", \"survived\": " << survived
       << ", \"double_failure_trials\": " << double_trials
       << ", \"clean_aborts\": " << clean_aborts << "}\n}\n";

  if (FILE* f = std::fopen("BENCH_risk.json", "w")) {
    std::fputs(json.str().c_str(), f);
    std::fclose(f);
    std::printf("\nwrote BENCH_risk.json\n");
  }

  std::printf(
      "\nvia-RAID-0 runs its whole window with zero fault tolerance; the "
      "direct routes keep\nsingle-failure protection, and Code 5-6 never "
      "touches the old parities at all.\n");
  return 0;
}
