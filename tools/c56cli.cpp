// c56cli — command-line front end for the library.
//
//   c56cli layout  <code> <p>                  print a stripe layout map
//   c56cli chains  <code> <p>                  dump every parity chain
//   c56cli analyze [--lb]                      Section V metric survey
//   c56cli convert <code> <approach> <p> [--lb] [--blocks N] [--kb N]
//                                              analyze + simulate one route
//   c56cli speedup [--lb]                      Table IV at n in {5,6,7}
//   c56cli mttdl   <disks> <afr%> <repair_h>   Markov reliability numbers
//   c56cli stats   [--prom]                    scripted migrate-under-faults
//                                              run, metrics dump (JSON; --prom
//                                              for Prometheus text)
//   c56cli serve-bench [--volumes N] [--tenants N] [--streams N]
//                  [--requests N] [--block BYTES] [--p PRIME] [--shards N]
//                  [--batch N] [--reads PCT] [--json]
//                                              drive the multi-tenant block
//                                              service with a stream load and
//                                              report throughput + latency
//   c56cli monitor [--groups N] [--workers N] [--ms N] [--faults]
//                  [--bundle PATH] [--series PATH]
//                                              live migration with sampler,
//                                              rate/ETA/stall monitoring, and
//                                              a post-mortem bundle on abort
//   c56cli postmortem <bundle>                 human summary of a post-mortem
//                                              bundle written by monitor (or
//                                              by MigrationMonitor anywhere)
//   c56cli scrub   [--p N] [--groups N] [--corrupt N] [--repair]
//                  [--rate N] [--json]         seeded silent-corruption demo:
//                                              migrate, plant write-time and
//                                              backdoor corruption, scrub
//                                              (detect-only unless --repair)
//   c56cli slow    [--volumes N] [--tenants N] [--streams N] [--requests N]
//                  [--block BYTES] [--p PRIME] [--shards N] [--batch N]
//                  [--reads PCT] [--n N] [--json]
//                                              run a request-traced stream
//                                              load and print the slowest-N
//                                              tail exemplars with per-stage
//                                              latency attribution (ring
//                                              capacity: C56_SLOW_N)
//   c56cli top     [--seconds N] [--ms N] [--volumes N] [--tenants N]
//                  [--streams N] [--block BYTES] [--p PRIME] [--shards N]
//                  [--reads PCT]               live per-tenant/volume/stage
//                                              view over a looping stream
//                                              load: interval req/s, stage
//                                              p99s, and SLO burn rates from
//                                              sampler snapshot deltas
//
// Codes: code56 rdp evenodd xcode pcode hcode hdp
// Approaches: via-raid0 via-raid4 direct

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/reliability.hpp"
#include "analysis/report.hpp"
#include "analysis/risk.hpp"
#include "analysis/speedup.hpp"
#include "codes/registry.hpp"
#include "layout/raid.hpp"
#include "migration/controller.hpp"
#include "migration/journal.hpp"
#include "migration/monitor.hpp"
#include "migration/online.hpp"
#include "migration/trace_gen.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/reqtrace.hpp"
#include "obs/sampler.hpp"
#include "scrub/scrubber.hpp"
#include "service/loadgen.hpp"
#include "service/slo.hpp"
#include "service/volume_manager.hpp"
#include "sim/event_sim.hpp"
#include "util/rng.hpp"
#include "xorblk/pool.hpp"
#include "xorblk/xor.hpp"

namespace {

using namespace c56;

std::optional<CodeId> parse_code(const std::string& s) {
  if (s == "code56" || s == "code5-6") return CodeId::kCode56;
  if (s == "rdp") return CodeId::kRdp;
  if (s == "evenodd") return CodeId::kEvenOdd;
  if (s == "xcode" || s == "x-code") return CodeId::kXCode;
  if (s == "pcode" || s == "p-code") return CodeId::kPCode;
  if (s == "hcode" || s == "h-code") return CodeId::kHCode;
  if (s == "hdp") return CodeId::kHdp;
  return std::nullopt;
}

std::optional<mig::Approach> parse_approach(const std::string& s) {
  if (s == "via-raid0" || s == "raid0") return mig::Approach::kViaRaid0;
  if (s == "via-raid4" || s == "raid4") return mig::Approach::kViaRaid4;
  if (s == "direct") return mig::Approach::kDirect;
  return std::nullopt;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

long long flag_value(int argc, char** argv, const char* flag,
                     long long fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atoll(argv[i + 1]);
  }
  return fallback;
}

std::string flag_string(int argc, char** argv, const char* flag,
                        const std::string& fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

/// Fill `array` (m disks) as a valid left-asymmetric RAID-5 with
/// seeded pseudo-random data.
void fill_raid5(mig::DiskArray& array, int m, std::uint64_t seed) {
  const std::size_t bs = array.block_bytes();
  Rng rng(seed);
  std::vector<std::uint8_t> block(bs), parity(bs);
  for (std::int64_t row = 0; row < array.blocks_per_disk(); ++row) {
    std::fill(parity.begin(), parity.end(), 0);
    const int pdisk = raid5_parity_disk(Raid5Flavor::kLeftAsymmetric,
                                        static_cast<int>(row % m), m);
    for (int d = 0; d < m; ++d) {
      if (d == pdisk) continue;
      rng.fill(block.data(), bs);
      std::ranges::copy(block, array.raw_block(d, row).begin());
      xor_into(parity.data(), block.data(), bs);
    }
    std::ranges::copy(parity, array.raw_block(pdisk, row).begin());
  }
}

char cell_glyph(const ErasureCode& code, Cell c) {
  switch (code.kind(c)) {
    case CellKind::kData: return '.';
    case CellKind::kRowParity: return 'H';
    case CellKind::kDiagParity: return 'D';
    case CellKind::kAntiDiagParity: return 'A';
    case CellKind::kVirtual: return '-';
  }
  return '?';
}

int cmd_layout(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: c56cli layout <code> <p>\n");
    return 2;
  }
  const auto id = parse_code(argv[0]);
  if (!id) {
    std::fprintf(stderr, "unknown code '%s'\n", argv[0]);
    return 2;
  }
  const auto code = make_code(*id, std::atoi(argv[1]));
  std::printf("%s: %d rows x %d cols, %d data + %d parity cells\n\n",
              code->name().c_str(), code->rows(), code->cols(),
              code->data_cell_count(), code->parity_cell_count());
  std::printf("      ");
  for (int c = 0; c < code->cols(); ++c) std::printf("d%-2d ", c);
  std::printf("\n");
  for (int r = 0; r < code->rows(); ++r) {
    std::printf("row %-2d ", r);
    for (int c = 0; c < code->cols(); ++c) {
      std::printf(" %c  ", cell_glyph(*code, {r, c}));
    }
    std::printf("\n");
  }
  std::printf(
      "\n. data  H horizontal parity  D diagonal parity  A anti-diagonal "
      "parity\n");
  return 0;
}

int cmd_chains(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: c56cli chains <code> <p>\n");
    return 2;
  }
  const auto id = parse_code(argv[0]);
  if (!id) {
    std::fprintf(stderr, "unknown code '%s'\n", argv[0]);
    return 2;
  }
  const auto code = make_code(*id, std::atoi(argv[1]));
  for (const ParityChain& ch : code->chains()) {
    std::printf("C[%d][%d] =", ch.parity.row, ch.parity.col);
    for (Cell in : ch.inputs) std::printf(" ^C[%d][%d]", in.row, in.col);
    std::printf("\n");
  }
  return 0;
}

int cmd_analyze(int argc, char** argv) {
  const bool lb = has_flag(argc, argv, "--lb");
  TextTable t({"conversion", "invalid", "migrate", "new parity",
               "extra space", "XORs/B", "total I/O/B", "time/B*Te"});
  for (const auto& spec : ana::figure_conversion_set(lb)) {
    const auto c = mig::analyze(spec);
    t.add_row({spec.label(), TextTable::pct(c.invalid_parity_ratio),
               TextTable::pct(c.parity_migration_ratio),
               TextTable::pct(c.new_parity_generation_ratio),
               TextTable::pct(c.extra_space_ratio),
               TextTable::fmt(c.xor_per_block, 2),
               TextTable::fmt(c.total_io, 2), TextTable::fmt(c.time, 3)});
  }
  t.print(std::cout);
  return 0;
}

int cmd_convert(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: c56cli convert <code> <approach> <p> [--lb] "
                 "[--blocks N] [--kb N]\n");
    return 2;
  }
  const auto id = parse_code(argv[0]);
  const auto approach = parse_approach(argv[1]);
  if (!id || !approach) {
    std::fprintf(stderr, "unknown code or approach\n");
    return 2;
  }
  const int p = std::atoi(argv[2]);
  const bool lb = has_flag(argc, argv, "--lb");
  mig::ConversionSpec spec;
  try {
    spec = mig::ConversionSpec::canonical(*id, *approach, p, lb);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "invalid conversion: %s\n", e.what());
    return 2;
  }
  const auto costs = mig::analyze(spec);
  std::printf("%s\n\n", spec.label().c_str());
  std::printf("  invalid parity ratio    %6.1f %%\n",
              costs.invalid_parity_ratio * 100);
  std::printf("  parity migration ratio  %6.1f %%\n",
              costs.parity_migration_ratio * 100);
  std::printf("  new parity ratio        %6.1f %%\n",
              costs.new_parity_generation_ratio * 100);
  std::printf("  extra space ratio       %6.1f %%\n",
              costs.extra_space_ratio * 100);
  std::printf("  computation             %6.2f XORs/B\n", costs.xor_per_block);
  std::printf("  I/O                     %6.2f reads/B + %.2f writes/B\n",
              costs.read_io, costs.write_io);
  std::printf("  analytic time           %6.3f B*Te (%s)\n", costs.time,
              lb ? "LB" : "NLB");
  for (const auto& ph : costs.phases) {
    std::printf("    phase '%s': %.2f reads/B, %.2f writes/B\n",
                ph.name.c_str(), ph.reads(), ph.writes());
  }

  mig::TraceParams params;
  params.total_data_blocks = flag_value(argc, argv, "--blocks", 60'000);
  params.block_bytes =
      static_cast<std::uint32_t>(flag_value(argc, argv, "--kb", 4) * 1024);
  const double ms = ana::simulate_conversion_ms(spec, params);
  std::printf("  simulated time          %6.2f s  (B=%lld, %u KB blocks)\n",
              ms / 1e3, static_cast<long long>(params.total_data_blocks),
              params.block_bytes / 1024);
  const auto risk = ana::conversion_window_risk(
      spec, static_cast<double>(params.total_data_blocks), 8.5, 0.081);
  std::printf("  window risk             tolerates %d failure(s), "
              "P(loss)=%.2e  [%s]\n",
              risk.tolerated, risk.loss_probability,
              ana::window_risk_rating(spec));
  return 0;
}

int cmd_speedup(int argc, char** argv) {
  const bool lb = has_flag(argc, argv, "--lb");
  TextTable t({"n", "vs code", "their best conversion", "speedup"});
  for (const auto& e : ana::table4(lb)) {
    t.add_row({std::to_string(e.n), to_string(e.other),
               e.other_spec.label(), TextTable::fmt(e.speedup, 2) + "x"});
  }
  t.print(std::cout);
  return 0;
}

int cmd_stats(int argc, char** argv) {
  const bool prom = has_flag(argc, argv, "--prom");
  obs::set_metrics_enabled(true);
  obs::Registry& reg = obs::Registry::global();
  const obs::CollectorHandle pool_handle = attach_pool_metrics(reg);

  // Scripted migrate-under-faults workload: a RAID-5 -> RAID-6
  // conversion with transient sector errors, torn writes and one
  // mid-stream disk death, application I/O racing the converter, a
  // rebuild of the dead disk, then a batched-controller phase over a
  // cached Code 5-6 array. Everything is seeded, so two runs dump the
  // same snapshot.
  const int p = 5, m = p - 1;
  const std::int64_t groups = 8;
  constexpr std::size_t kBlock = 512;

  mig::DiskArray array(m, groups * (p - 1), kBlock);
  fill_raid5(array, m, 0xC56u);

  mig::MemoryCheckpointSink sink;
  mig::OnlineMigrator migrator(array, p);
  migrator.attach_journal(sink);
  migrator.set_workers(2);
  mig::RetryPolicy retry;
  retry.max_attempts = 6;
  retry.backoff_us = 1;
  migrator.set_retry_policy(retry);

  // Route migration events through the global log so events_emitted /
  // events_dropped show up in the dump; quiet on stderr because the
  // seeded fault plan makes reconstruction warnings routine here.
  obs::EventLog& log = obs::EventLog::global();
  log.set_stderr_echo(false);
  log.attach_metrics(reg);
  migrator.attach_events(log, "stats");

  mig::FaultPlan plan;
  plan.sector_error_rate = 0.02;
  plan.torn_write_rate = 0.02;
  plan.disk_failures.push_back({.disk = 1, .after_ios = 40});
  array.set_fault_plan(plan);

  migrator.start();
  {  // application reads/writes concurrent with the conversion
    Rng rng(7);
    std::vector<std::uint8_t> buf(kBlock, 0xAB);
    for (int i = 0; i < 200; ++i) {
      const auto l = static_cast<std::int64_t>(rng.next_below(
          static_cast<std::uint64_t>(migrator.logical_blocks())));
      if (i % 3 == 0) {
        migrator.write_block(l, buf);
      } else {
        migrator.read_block(l, buf);
      }
    }
  }
  migrator.finish();
  migrator.rebuild_failed_disks();

  // Batched-controller phase: full-stripe writes, a partial-stripe
  // read-modify-write, and cached re-reads.
  auto code = make_code(CodeId::kCode56, p);
  const std::int64_t cstripes = 6;
  mig::DiskArray carray(code->cols(), cstripes * code->rows(), kBlock);
  mig::ArrayController ctrl(carray, std::move(code));
  ctrl.set_cache_stripes(4);
  {
    std::vector<std::uint8_t> buf(
        static_cast<std::size_t>(ctrl.logical_blocks()) * kBlock, 0x5A);
    Rng rng(11);
    rng.fill(buf.data(), buf.size());
    ctrl.write(0, ctrl.logical_blocks(), buf);         // full stripes
    ctrl.write(1, 3, {buf.data(), 3 * kBlock});        // partial stripe
    ctrl.read(0, ctrl.logical_blocks(), buf);          // fills the cache
    ctrl.read(0, 4, {buf.data(), 4 * kBlock});         // cache hits
  }

  // Label each array/controller with the volume it played in the
  // script (0 = the migrated RAID-5, 1 = the batched Code 5-6), so the
  // dump attributes I/O per volume the way the block service does.
  array.attach_metrics(reg, "disk_array", "volume=\"0\"");
  migrator.attach_metrics(reg);
  carray.attach_metrics(reg, "disk_array", "volume=\"1\"");
  ctrl.attach_metrics(reg, "controller", "volume=\"1\"");
  const std::string out = prom ? reg.to_prometheus() : reg.to_json();
  std::fputs(out.c_str(), stdout);
  if (!out.empty() && out.back() != '\n') std::fputc('\n', stdout);
  return 0;
}

int cmd_serve_bench(int argc, char** argv) {
  const bool json = has_flag(argc, argv, "--json");
  obs::set_metrics_enabled(true);

  svc::LoadParams lp;
  lp.volumes = static_cast<int>(flag_value(argc, argv, "--volumes", 16));
  lp.tenants = static_cast<int>(flag_value(argc, argv, "--tenants", 16));
  lp.streams = flag_value(argc, argv, "--streams", 20000);
  lp.requests_per_stream =
      static_cast<int>(flag_value(argc, argv, "--requests", 2));
  lp.block_bytes =
      static_cast<std::size_t>(flag_value(argc, argv, "--block", 512));
  lp.p = static_cast<int>(flag_value(argc, argv, "--p", 7));
  // --reads is a percentage (0-100) of requests that read back.
  lp.read_fraction =
      static_cast<double>(flag_value(argc, argv, "--reads", 0)) / 100.0;
  lp.seed = 0xC56;
  if (lp.volumes < 1 || lp.tenants < 1 || lp.streams < 1 ||
      lp.requests_per_stream < 1 || lp.block_bytes < 16 ||
      lp.read_fraction < 0 || lp.read_fraction > 1) {
    std::fprintf(stderr,
                 "usage: c56cli serve-bench [--volumes N] [--tenants N] "
                 "[--streams N] [--requests N] [--block BYTES] [--p PRIME] "
                 "[--shards N] [--batch N] [--reads PCT] [--json]\n");
    return 2;
  }

  svc::ServiceConfig sc;
  sc.shards = static_cast<int>(flag_value(argc, argv, "--shards", 4));
  sc.max_batch = static_cast<int>(flag_value(argc, argv, "--batch", 256));

  // The registry must outlive the manager: volume-level collectors
  // detach from their subsystems' destructors.
  obs::Registry reg;
  svc::VolumeManager mgr(sc);
  svc::create_stream_volumes(mgr, lp);
  mgr.attach_metrics(reg);
  const svc::LoadStats st = svc::run_stream_load(mgr, lp);
  const obs::Snapshot snap = reg.snapshot();
  const auto* coalesced = snap.find("service_coalesced_runs");
  const std::uint64_t coalesced_runs = coalesced ? coalesced->counter : 0;
  mgr.detach_metrics();
  mgr.stop();

  if (json) {
    std::printf(
        "{\"streams\": %lld, \"requests\": %lld, \"volumes\": %d, "
        "\"tenants\": %d, \"shards\": %d, \"max_batch\": %d, "
        "\"block_bytes\": %zu, \"p\": %d, \"read_pct\": %.0f, "
        "\"rejected\": %lld, \"errors\": %llu, \"wall_s\": %.4f, "
        "\"mbps\": %.2f, \"device_runs\": %llu, \"device_bytes\": %llu, "
        "\"device_mbps\": %.4f, \"coalesced_runs\": %llu, "
        "\"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f, "
        "\"max_us\": %llu}\n",
        static_cast<long long>(st.streams),
        static_cast<long long>(st.requests), lp.volumes, lp.tenants,
        sc.shards, sc.max_batch, lp.block_bytes, lp.p,
        lp.read_fraction * 100.0, static_cast<long long>(st.rejected),
        static_cast<unsigned long long>(st.errors), st.wall_s, st.mbps,
        static_cast<unsigned long long>(st.device_runs),
        static_cast<unsigned long long>(st.device_bytes), st.device_mbps,
        static_cast<unsigned long long>(coalesced_runs), st.p50_us,
        st.p95_us, st.p99_us, static_cast<unsigned long long>(st.max_us));
  } else {
    std::printf(
        "serve-bench: %lld streams x %d requests over %d volumes, "
        "%d tenants, %zu B blocks, p=%d (%d shards, batch %d)\n",
        static_cast<long long>(st.streams), lp.requests_per_stream,
        lp.volumes, lp.tenants, lp.block_bytes, lp.p, sc.shards,
        sc.max_batch);
    std::printf("  requests   %lld  (rejected %lld, errors %llu)\n",
                static_cast<long long>(st.requests),
                static_cast<long long>(st.rejected),
                static_cast<unsigned long long>(st.errors));
    std::printf("  in-memory  %.3f s wall, %.1f MB/s\n", st.wall_s, st.mbps);
    std::printf(
        "  device     %llu runs, %llu coalesced, %.1f MB moved, "
        "%.3f MB/s (device model)\n",
        static_cast<unsigned long long>(st.device_runs),
        static_cast<unsigned long long>(coalesced_runs),
        static_cast<double>(st.device_bytes) / 1e6, st.device_mbps);
    std::printf("  latency    p50 %.0f us  p95 %.0f us  p99 %.0f us  "
                "max %llu us\n",
                st.p50_us, st.p95_us, st.p99_us,
                static_cast<unsigned long long>(st.max_us));
  }
  return st.errors == 0 ? 0 : 1;
}

int cmd_monitor(int argc, char** argv) {
  const auto groups = flag_value(argc, argv, "--groups", 256);
  const int workers =
      static_cast<int>(flag_value(argc, argv, "--workers", 2));
  const long long sample_ms = flag_value(argc, argv, "--ms", 20);
  const bool faults = has_flag(argc, argv, "--faults");
  const std::string bundle =
      flag_string(argc, argv, "--bundle", "postmortem.json");
  const std::string series = flag_string(argc, argv, "--series", "");
  if (groups <= 0 || workers <= 0 || sample_ms <= 0) {
    std::fprintf(stderr, "monitor: --groups/--workers/--ms must be > 0\n");
    return 2;
  }

  obs::set_metrics_enabled(true);
  obs::set_events_enabled(true);
  obs::Registry& reg = obs::Registry::global();
  obs::EventLog& log = obs::EventLog::global();
  log.attach_metrics(reg);
  // A fault plan makes per-block reconstruction warnings routine; keep
  // the live console readable (drops are counted in events_dropped).
  log.set_rate_limit(8);

  const int p = 5, m = p - 1;
  constexpr std::size_t kBlock = 512;
  mig::DiskArray array(m, groups * (p - 1), kBlock);
  fill_raid5(array, m, 0xC56u);

  mig::MemoryCheckpointSink sink;
  mig::OnlineMigrator migrator(array, p);
  migrator.attach_journal(sink);
  migrator.set_workers(workers);
  mig::RetryPolicy retry;
  retry.max_attempts = 4;
  retry.backoff_us = 1;
  migrator.set_retry_policy(retry);
  migrator.attach_events(log, "cli-monitor");
  array.attach_metrics(reg);
  migrator.attach_metrics(reg);

  // Background scrubber riding the monitored conversion, detect-only:
  // a faulted run leaves dead disks whose stale bytes fail every
  // chain, and the migration-mode scrubber has no failed-disk
  // deferral — repairs would flail. Detection still populates the
  // scrub_* counters the post-mortem summary reports.
  scrub::Scrubber scrubber(array, migrator);
  scrubber.set_repair(false);
  scrubber.set_interval_ms(sample_ms);
  scrubber.attach_metrics(reg);
  scrubber.attach_events(log);

  if (faults) {
    // Two mid-stream disk deaths exceed the source RAID-5's fault
    // tolerance, so the conversion aborts and the monitor dumps the
    // post-mortem bundle.
    mig::FaultPlan plan;
    plan.sector_error_rate = 0.01;
    plan.torn_write_rate = 0.01;
    plan.disk_failures.push_back({.disk = 1, .after_ios = 150});
    plan.disk_failures.push_back({.disk = 2, .after_ios = 400});
    array.set_fault_plan(plan);
  }

  mig::MonitorConfig mcfg;
  mcfg.migration_id = "cli-monitor";
  mcfg.postmortem_path = bundle;
  mig::MigrationMonitor monitor(migrator, reg, log, mcfg);

  obs::MetricsSampler sampler(reg);
  sampler.set_interval_ms(static_cast<std::int64_t>(sample_ms));
  if (!series.empty() && !sampler.set_jsonl_path(series)) {
    std::fprintf(stderr, "monitor: cannot open --series file '%s'\n",
                 series.c_str());
    return 2;
  }
  sampler.add_probe([&monitor] { monitor.poll(); });
  sampler.start();

  monitor.begin_phase("convert+app-io");
  scrubber.start();
  migrator.start();
  {  // application I/O racing the conversion, as in `stats`
    Rng rng(7);
    std::vector<std::uint8_t> buf(kBlock, 0xAB);
    const auto blocks = static_cast<std::uint64_t>(migrator.logical_blocks());
    for (int i = 0; i < 400 && migrator.converting(); ++i) {
      const auto l = static_cast<std::int64_t>(rng.next_below(blocks));
      if (i % 3 == 0) {
        migrator.write_block(l, buf);
      } else {
        migrator.read_block(l, buf);
      }
      if (i % 50 == 0) {
        std::printf("%s\n", monitor.status_line().c_str());
      }
    }
  }
  migrator.finish();
  scrubber.stop();
  monitor.end_phase();
  sampler.stop();
  monitor.poll();  // final poll: terminal state + abort dump if missed

  std::printf("%s\n", monitor.status_line().c_str());
  std::printf("samples=%llu events_emitted=%llu events_dropped=%llu\n",
              static_cast<unsigned long long>(sampler.ticks()),
              static_cast<unsigned long long>(log.emitted()),
              static_cast<unsigned long long>(log.dropped()));
  if (!series.empty()) {
    std::printf("time series written to %s\n", series.c_str());
  }

  if (migrator.state() == mig::MigrationState::kAborted) {
    std::printf("post-mortem bundle written to %s"
                " (inspect with: c56cli postmortem %s)\n",
                bundle.c_str(), bundle.c_str());
    return 1;
  }
  // Clean finish: still drop a bundle so the operator can inspect the
  // timeline of a healthy run with the same tooling.
  if (monitor.write_postmortem(bundle)) {
    std::printf("run bundle written to %s\n", bundle.c_str());
  }
  return 0;
}

int cmd_postmortem(int argc, char** argv) {
  if (argc < 1) {
    std::fprintf(stderr, "usage: c56cli postmortem <bundle.json>\n");
    return 2;
  }
  std::ifstream in(argv[0], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "postmortem: cannot read '%s'\n", argv[0]);
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string summary = mig::summarize_postmortem(buf.str());
  std::fputs(summary.c_str(), stdout);
  if (!summary.empty() && summary.back() != '\n') std::fputc('\n', stdout);
  return summary.rfind("error:", 0) == 0 ? 1 : 0;
}

int cmd_mttdl(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: c56cli mttdl <disks> <afr%%> <repair_h>\n");
    return 2;
  }
  const int disks = std::atoi(argv[0]);
  const double afr = std::atof(argv[1]) / 100.0;
  const double repair = std::atof(argv[2]);
  std::printf("disks=%d AFR=%.2f%% repair=%.0fh\n", disks, afr * 100, repair);
  std::printf("  RAID-5 MTTDL: %12.0f h (%.1f years)\n",
              ana::raid5_mttdl_hours(disks, afr, repair),
              ana::raid5_mttdl_hours(disks, afr, repair) / 8760);
  std::printf("  RAID-6 MTTDL: %12.0f h (%.1f years)\n",
              ana::raid6_mttdl_hours(disks + 1, afr, repair),
              ana::raid6_mttdl_hours(disks + 1, afr, repair) / 8760);
  return 0;
}

int cmd_scrub(int argc, char** argv) {
  const int p = static_cast<int>(flag_value(argc, argv, "--p", 5));
  const std::int64_t groups = flag_value(argc, argv, "--groups", 8);
  const bool repair = has_flag(argc, argv, "--repair");
  const int rate = static_cast<int>(flag_value(argc, argv, "--rate", 0));
  const bool json = has_flag(argc, argv, "--json");
  const std::int64_t want_inject = flag_value(argc, argv, "--corrupt", 3);
  if (p < 5 || groups < 2) {
    std::fprintf(stderr, "scrub: need --p >= 5 and --groups >= 2\n");
    return 2;
  }
  constexpr std::size_t kBlock = 512;
  const int m = p - 1;

  // A finished RAID-5 -> RAID-6 migration: both parity families exist,
  // so the scrubber can locate (not just detect) single corrupted cells.
  mig::DiskArray array(m, groups * (p - 1), kBlock);
  fill_raid5(array, m, 0xC56u);
  mig::OnlineMigrator migrator(array, p);
  migrator.set_workers(2);
  migrator.start();
  migrator.finish();

  // One write-time silent corruption through the fault plan (the next
  // counted write of disk 0 block 0 persists with a flipped bit and
  // reports success), consumed by a full pass of application rewrites...
  mig::FaultPlan plan;
  plan.silent_corruptions.push_back({.disk = 0, .block = 0});
  array.set_fault_plan(plan);
  {
    Rng rng(21);
    std::vector<std::uint8_t> buf(kBlock);
    for (std::int64_t l = 0; l < migrator.logical_blocks(); ++l) {
      rng.fill(buf.data(), buf.size());
      migrator.write_block(l, buf);
    }
  }
  // ... plus seeded single-bit backdoor flips, one per stripe group.
  {
    Rng rng(0x5C12B);
    const std::int64_t k = std::min<std::int64_t>(want_inject, groups - 1);
    for (std::int64_t g = 1; g <= k; ++g) {
      const int disk =
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(p)));
      const std::int64_t block =
          g * (p - 1) +
          static_cast<std::int64_t>(
              rng.next_below(static_cast<std::uint64_t>(p - 1)));
      array.corrupt_block(disk, block,
                          static_cast<std::size_t>(rng.next_below(kBlock)),
                          static_cast<std::uint8_t>(1u << rng.next_below(8)));
    }
  }
  const std::uint64_t injected = array.silent_corruptions();

  obs::EventLog& log = obs::EventLog::global();
  log.set_stderr_echo(false);
  scrub::Scrubber scr(array, migrator);
  scr.attach_events(log);
  scr.set_repair(repair);
  scr.set_rate(rate);

  std::vector<scrub::PassReport> passes;
  for (int i = 0; i < 3; ++i) {
    passes.push_back(scr.run_pass());
    if (!repair || passes.back().dirty == 0) break;
  }
  const scrub::ScrubStats st = scr.stats();
  const bool clean = migrator.verify_raid6();

  if (json) {
    std::printf("{\"p\": %d, \"groups\": %lld, \"injected\": %llu, "
                "\"repair\": %s, \"rate\": %d, \"passes\": [",
                p, static_cast<long long>(groups),
                static_cast<unsigned long long>(injected),
                repair ? "true" : "false", rate);
    for (std::size_t i = 0; i < passes.size(); ++i) {
      const scrub::PassReport& r = passes[i];
      std::printf("%s{\"scanned\": %lld, \"dirty\": %lld, \"located\": %lld, "
                  "\"repaired\": %lld, \"ambiguous\": %lld, "
                  "\"deferred\": %lld, \"failed\": %lld}",
                  i == 0 ? "" : ", ", static_cast<long long>(r.scanned),
                  static_cast<long long>(r.dirty),
                  static_cast<long long>(r.located),
                  static_cast<long long>(r.repaired),
                  static_cast<long long>(r.ambiguous),
                  static_cast<long long>(r.deferred),
                  static_cast<long long>(r.failed));
    }
    std::printf("], \"cells_repaired\": %llu, \"repair_failures\": %llu, "
                "\"verify_raid6\": %s}\n",
                static_cast<unsigned long long>(st.cells_repaired),
                static_cast<unsigned long long>(st.repair_failures),
                clean ? "true" : "false");
    return 0;
  }

  std::printf("scrub demo: p=%d groups=%lld corruptions=%llu "
              "(1 write-time + %llu backdoor), repair=%s rate=%d\n",
              p, static_cast<long long>(groups),
              static_cast<unsigned long long>(injected),
              static_cast<unsigned long long>(injected - 1),
              repair ? "on" : "off", rate);
  for (std::size_t i = 0; i < passes.size(); ++i) {
    const scrub::PassReport& r = passes[i];
    std::printf("  pass %zu: scanned=%lld dirty=%lld located=%lld "
                "repaired=%lld ambiguous=%lld deferred=%lld failed=%lld\n",
                i + 1, static_cast<long long>(r.scanned),
                static_cast<long long>(r.dirty),
                static_cast<long long>(r.located),
                static_cast<long long>(r.repaired),
                static_cast<long long>(r.ambiguous),
                static_cast<long long>(r.deferred),
                static_cast<long long>(r.failed));
  }
  std::printf("  totals: repaired=%llu ambiguous=%llu repair_failures=%llu\n",
              static_cast<unsigned long long>(st.cells_repaired),
              static_cast<unsigned long long>(st.ambiguous),
              static_cast<unsigned long long>(st.repair_failures));
  std::printf("  verify_raid6: %s\n", clean ? "ok" : "DIRTY");
  return 0;
}

/// Shared flag parsing for the request-traced load commands (slow, top).
svc::LoadParams parse_load_params(int argc, char** argv,
                                  std::int64_t default_streams) {
  svc::LoadParams lp;
  lp.volumes = static_cast<int>(flag_value(argc, argv, "--volumes", 8));
  lp.tenants = static_cast<int>(flag_value(argc, argv, "--tenants", 8));
  lp.streams = flag_value(argc, argv, "--streams", default_streams);
  lp.requests_per_stream =
      static_cast<int>(flag_value(argc, argv, "--requests", 2));
  lp.block_bytes =
      static_cast<std::size_t>(flag_value(argc, argv, "--block", 512));
  lp.p = static_cast<int>(flag_value(argc, argv, "--p", 7));
  lp.read_fraction =
      static_cast<double>(flag_value(argc, argv, "--reads", 25)) / 100.0;
  lp.seed = 0xC56;
  return lp;
}

bool load_params_valid(const svc::LoadParams& lp) {
  return lp.volumes >= 1 && lp.tenants >= 1 && lp.streams >= 1 &&
         lp.requests_per_stream >= 1 && lp.block_bytes >= 16 &&
         lp.read_fraction >= 0 && lp.read_fraction <= 1;
}

int cmd_slow(int argc, char** argv) {
  const bool json = has_flag(argc, argv, "--json");
  const svc::LoadParams lp = parse_load_params(argc, argv, 5000);
  if (!load_params_valid(lp)) {
    std::fprintf(stderr,
                 "usage: c56cli slow [--volumes N] [--tenants N] "
                 "[--streams N] [--requests N] [--block BYTES] [--p PRIME] "
                 "[--shards N] [--batch N] [--reads PCT] [--n N] [--json]\n");
    return 2;
  }
  svc::ServiceConfig sc;
  sc.shards = static_cast<int>(flag_value(argc, argv, "--shards", 4));
  sc.max_batch = static_cast<int>(flag_value(argc, argv, "--batch", 256));

  obs::set_metrics_enabled(true);
  obs::set_req_trace_enabled(true);
  obs::SlowRequestRing& ring = obs::SlowRequestRing::global();
  ring.clear();

  obs::Registry reg;  // outlives the manager (volume collectors)
  svc::VolumeManager mgr(sc);
  svc::create_stream_volumes(mgr, lp);
  mgr.attach_metrics(reg);
  const svc::LoadStats st = svc::run_stream_load(mgr, lp);
  mgr.detach_metrics();
  mgr.stop();

  if (json) {
    std::printf("{\"requests\": %lld, \"wall_s\": %.4f, \"mbps\": %.2f, "
                "\"considered\": %llu, \"capacity\": %zu, "
                "\"slow_requests\": %s}\n",
                static_cast<long long>(st.requests), st.wall_s, st.mbps,
                static_cast<unsigned long long>(ring.considered()),
                ring.capacity(), ring.to_json().c_str());
    return st.errors == 0 ? 0 : 1;
  }

  const auto slow = ring.snapshot();
  const auto n = std::min<std::size_t>(
      slow.size(), static_cast<std::size_t>(std::max<long long>(
                       1, flag_value(argc, argv, "--n", 16))));
  std::printf("slow: %lld requests traced, slowest %zu of %llu "
              "(ring capacity %zu; override with C56_SLOW_N)\n",
              static_cast<long long>(st.requests), n,
              static_cast<unsigned long long>(ring.considered()),
              ring.capacity());
  std::printf("  %10s %6s %6s %11s %8s | %8s %8s %8s %8s %8s %8s\n", "trace",
              "tenant", "volume", "op", "lat_us", "queue", "sched", "batch",
              "planner", "device", "complete");
  for (std::size_t i = 0; i < n; ++i) {
    const obs::SlowRequest& r = slow[i];
    std::printf("  %10llu %6d %6d %11s %8llu |",
                static_cast<unsigned long long>(r.trace_id), r.tenant,
                r.volume, obs::req_op_name(r.op),
                static_cast<unsigned long long>(r.latency_us));
    for (int s = 0; s < obs::kStageCount; ++s) {
      std::printf(" %8llu", static_cast<unsigned long long>(r.stage_us[s]));
    }
    std::printf("\n");
  }
  return st.errors == 0 ? 0 : 1;
}

int cmd_top(int argc, char** argv) {
  const long long seconds = flag_value(argc, argv, "--seconds", 3);
  const long long interval_ms = flag_value(argc, argv, "--ms", 250);
  svc::LoadParams lp = parse_load_params(argc, argv, 10000);
  if (seconds < 1 || interval_ms < 10 || !load_params_valid(lp)) {
    std::fprintf(stderr,
                 "usage: c56cli top [--seconds N>=1] [--ms N>=10] "
                 "[--volumes N] [--tenants N] [--streams N] [--block BYTES] "
                 "[--p PRIME] [--shards N] [--reads PCT]\n");
    return 2;
  }
  svc::ServiceConfig sc;
  sc.shards = static_cast<int>(flag_value(argc, argv, "--shards", 4));

  obs::set_metrics_enabled(true);
  obs::set_req_trace_enabled(true);

  obs::Registry reg;
  svc::VolumeManager mgr(sc);
  svc::create_stream_volumes(mgr, lp);
  mgr.attach_metrics(reg);
  svc::SloTracker slo(mgr);
  slo.attach_metrics(reg);
  obs::MetricsSampler sampler(reg);
  sampler.set_interval_ms(interval_ms);
  sampler.add_probe(slo.probe());

  // The load loops complete passes in the background until the watch
  // window closes; each pass reseeds so the interleave varies.
  std::atomic<bool> stop{false};
  std::thread load([&] {
    std::uint64_t round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      svc::LoadParams pass = lp;
      pass.seed = lp.seed + ++round;
      svc::run_stream_load(mgr, pass);
    }
  });

  std::printf("top: %d volumes, %d tenants, %d shards, SLO p99 target "
              "%llu us (C56_SLO_P99_US)\n",
              lp.volumes, lp.tenants, sc.shards,
              static_cast<unsigned long long>(slo.config().target_p99_us));
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + std::chrono::seconds(seconds);
  sampler.sample_once();  // baseline for the first delta
  obs::Snapshot prev = sampler.samples().back().snap;
  std::uint64_t prev_us = sampler.samples().back().t_us;
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    sampler.sample_once();
    const obs::MetricsSample cur = sampler.samples().back();
    const double dt = static_cast<double>(cur.t_us - prev_us) / 1e6;
    if (dt <= 0) continue;

    const auto counter_delta = [&](const std::string& name) -> std::uint64_t {
      const obs::Metric* c = cur.snap.find(name);
      const obs::Metric* p = prev.find(name);
      if (!c) return 0;
      const std::uint64_t was = p ? p->counter : 0;
      return c->counter > was ? c->counter - was : 0;
    };
    const double wall_s =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()) /
        1e3;
    const auto* inflight = cur.snap.find("service_inflight");
    std::printf("[t=%5.1fs] %8.0f req/s  inflight %lld\n", wall_s,
                static_cast<double>(counter_delta("service_completed")) / dt,
                static_cast<long long>(inflight ? inflight->gauge : 0));

    std::printf("  stage p99 us:");
    for (int s = 0; s < obs::kStageCount; ++s) {
      const std::string name =
          std::string("service_stage_") + obs::stage_name(s) + "_us";
      const obs::Metric* c = cur.snap.find(name);
      const obs::Metric* p = prev.find(name);
      double p99 = 0;
      if (c) p99 = (p ? c->hist.minus(p->hist) : c->hist).p99;
      std::printf("  %s %.0f", obs::stage_name(s), p99);
    }
    std::printf("\n");

    auto tenants = slo.snapshot();
    std::sort(tenants.begin(), tenants.end(),
              [](const auto& a, const auto& b) {
                return a.interval_count > b.interval_count;
              });
    for (std::size_t i = 0; i < tenants.size() && i < 4; ++i) {
      const auto& t = tenants[i];
      if (t.interval_count == 0) break;
      std::printf("  tenant %-3d %8.0f req/s  p99 %7.0f us  burn %.2fx\n",
                  t.tenant, static_cast<double>(t.interval_count) / dt,
                  t.interval_p99_us, t.burn_rate);
    }
    std::vector<std::pair<std::uint64_t, int>> vols;
    for (int v = 0; v < lp.volumes; ++v) {
      const std::uint64_t ops = counter_delta(
          "service_ops{volume=\"" + std::to_string(v) + "\"}");
      if (ops > 0) vols.emplace_back(ops, v);
    }
    std::sort(vols.rbegin(), vols.rend());
    for (std::size_t i = 0; i < vols.size() && i < 4; ++i) {
      std::printf("  volume %-3d %8.0f ops/s\n", vols[i].second,
                  static_cast<double>(vols[i].first) / dt);
    }
    prev = cur.snap;
    prev_us = cur.t_us;
  }

  stop.store(true, std::memory_order_relaxed);
  load.join();
  slo.detach_metrics();
  mgr.detach_metrics();
  mgr.stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: c56cli <layout|chains|analyze|convert|speedup|"
                 "mttdl|stats|serve-bench|monitor|postmortem|scrub|slow|"
                 "top> ...\n");
    return 2;
  }
  const std::string cmd = argv[1];
  argc -= 2;
  argv += 2;
  if (cmd == "layout") return cmd_layout(argc, argv);
  if (cmd == "chains") return cmd_chains(argc, argv);
  if (cmd == "analyze") return cmd_analyze(argc, argv);
  if (cmd == "convert") return cmd_convert(argc, argv);
  if (cmd == "speedup") return cmd_speedup(argc, argv);
  if (cmd == "mttdl") return cmd_mttdl(argc, argv);
  if (cmd == "stats") return cmd_stats(argc, argv);
  if (cmd == "serve-bench") return cmd_serve_bench(argc, argv);
  if (cmd == "monitor") return cmd_monitor(argc, argv);
  if (cmd == "postmortem") return cmd_postmortem(argc, argv);
  if (cmd == "scrub") return cmd_scrub(argc, argv);
  if (cmd == "slow") return cmd_slow(argc, argv);
  if (cmd == "top") return cmd_top(argc, argv);
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 2;
}
