// Scratch tool: search HDP chain geometries that yield an MDS code.
// Dimensions: anti-diagonal slope s (+1: r+j classes, -1: r-j classes),
// class mapping class(i) = <k*i + a> mod p for the parity at (i, p-2-i),
// and the dependency direction:
//   mode A: row chains exclude the AD parity cell; AD chains may include
//           row-parity cells (rows encode first).
//   mode B: row chains include the AD parity cell; AD chains must be
//           data-only (AD encodes first).
#include <cstdio>
#include <vector>

#include "gf2/chain_solver.hpp"
#include "util/prime.hpp"

using namespace c56;

int main() {
  for (char mode : {'A', 'B'}) {
    for (int slope : {+1, -1}) {
      for (int k : {1, 2, -1, -2}) {
        for (int a = 0; a < 13; ++a) {
          bool all_ok = true;
          for (int p : {5, 7, 13}) {
            const int n = p - 1;
            auto idx = [&](int r, int c) { return r * n + c; };
            auto is_rowpar = [&](int r, int c) { return r == c; };
            auto is_adpar = [&](int r, int c) { return c == p - 2 - r; };
            std::vector<ChainSpec> chains;
            bool valid = true;
            std::vector<char> class_used(static_cast<std::size_t>(p), 0);
            for (int i = 0; i < n && valid; ++i) {
              const int cls = pmod(k * i + a, p);
              if (class_used[static_cast<std::size_t>(cls)]) valid = false;
              class_used[static_cast<std::size_t>(cls)] = 1;
              ChainSpec ch;
              ch.cells.push_back(idx(i, p - 2 - i));
              for (int j = 0; j < n; ++j) {
                const int r = slope > 0 ? pmod(cls - j, p) : pmod(cls + j, p);
                if (r > n - 1) continue;
                if (r == i && j == p - 2 - i) continue;  // itself
                if (is_adpar(r, j)) { valid = false; break; }
                if (is_rowpar(r, j) && mode == 'B') { valid = false; break; }
                ch.cells.push_back(idx(r, j));
              }
              chains.push_back(std::move(ch));
            }
            for (int i = 0; i < n; ++i) {
              ChainSpec ch;
              for (int j = 0; j < n; ++j) {
                if (mode == 'A' && is_adpar(i, j) && !is_rowpar(i, j)) continue;
                ch.cells.push_back(idx(i, j));
              }
              chains.push_back(std::move(ch));
            }
            if (!valid) { all_ok = false; break; }
            for (int f1 = 0; f1 < n && all_ok; ++f1) {
              for (int f2 = f1 + 1; f2 < n && all_ok; ++f2) {
                std::vector<int> erased;
                for (int r = 0; r < n; ++r) {
                  erased.push_back(idx(r, f1));
                  erased.push_back(idx(r, f2));
                }
                if (!solve_erasures(n * n, chains, erased)) all_ok = false;
              }
            }
            if (!all_ok) break;
          }
          if (all_ok) {
            std::printf("MDS: mode=%c slope=%+d class=<%d*i+%d>\n", mode,
                        slope, k, a);
          }
        }
      }
    }
  }
  return 0;
}
